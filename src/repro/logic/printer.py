"""Concrete-syntax rendering of formulas.

Round-trips with :mod:`repro.logic.parser`:
``parse(to_text(f)) == f`` up to smart-constructor normalization.

The concrete syntax follows the paper's notation as closely as ASCII
allows::

    x != y and not R1(x, y) and R1(y, x) and R2(y)
    exists y. (x != y and R1(x, y))
    forall x. exists y. R1(x, y)
"""

from __future__ import annotations

from .syntax import (
    And,
    Eq,
    Exists,
    FalseF,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    RelAtom,
    TrueF,
)

# Binding strength, loosest to tightest: -> , or , and , not/quantifier, atom
_PREC_IMPLIES = 0
_PREC_OR = 1
_PREC_AND = 2
_PREC_UNARY = 3
_PREC_ATOM = 4


def to_text(formula: Formula) -> str:
    """Render a formula in the concrete syntax accepted by the parser."""
    return _render(formula, 0)


def _paren(text: str, inner: int, outer: int) -> str:
    return f"({text})" if inner < outer else text


def _render(formula: Formula, outer: int) -> str:
    if isinstance(formula, TrueF):
        return "true"
    if isinstance(formula, FalseF):
        return "false"
    if isinstance(formula, Eq):
        return f"{formula.left.name} = {formula.right.name}"
    if isinstance(formula, RelAtom):
        args = ", ".join(a.name for a in formula.args)
        return f"R{formula.index + 1}({args})"
    if isinstance(formula, Not):
        if isinstance(formula.body, Eq):
            e = formula.body
            return f"{e.left.name} != {e.right.name}"
        return _paren(f"not {_render(formula.body, _PREC_UNARY)}",
                      _PREC_UNARY, outer)
    if isinstance(formula, And):
        text = " and ".join(_render(c, _PREC_AND + 1) for c in formula.children)
        return _paren(text, _PREC_AND, outer)
    if isinstance(formula, Or):
        text = " or ".join(_render(c, _PREC_OR + 1) for c in formula.children)
        return _paren(text, _PREC_OR, outer)
    if isinstance(formula, Implies):
        text = (f"{_render(formula.left, _PREC_IMPLIES + 1)} -> "
                f"{_render(formula.right, _PREC_IMPLIES)}")
        return _paren(text, _PREC_IMPLIES, outer)
    if isinstance(formula, Exists):
        text = f"exists {formula.var.name}. {_render(formula.body, _PREC_IMPLIES)}"
        # A quantifier body extends maximally rightward, so anywhere a
        # tighter context follows (operand of and/or/->/not) the whole
        # quantified formula must be parenthesized or it captures the
        # rest of the line on re-parse.
        return f"({text})" if outer > _PREC_IMPLIES else text
    if isinstance(formula, Forall):
        text = f"forall {formula.var.name}. {_render(formula.body, _PREC_IMPLIES)}"
        return f"({text})" if outer > _PREC_IMPLIES else text
    raise TypeError(f"unknown formula node {formula!r}")
