"""Structural transformations on formulas.

Free variables, substitution, validation against a database type,
negation normal form, disjunctive normal form (for the quantifier-free
fragment), simplification, and quantifier rank — the metric the
Ehrenfeucht–Fraïssé machinery of Section 3 is stratified by.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from ..errors import ArityError, TypeSignatureError
from .syntax import (
    FALSE,
    TRUE,
    And,
    Eq,
    Exists,
    FalseF,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    RelAtom,
    TrueF,
    Var,
    conj,
    disj,
    neg,
)


def free_variables(formula: Formula) -> frozenset[Var]:
    """The free variables of a formula."""
    if isinstance(formula, (TrueF, FalseF)):
        return frozenset()
    if isinstance(formula, Eq):
        return frozenset({formula.left, formula.right})
    if isinstance(formula, RelAtom):
        return frozenset(formula.args)
    if isinstance(formula, Not):
        return free_variables(formula.body)
    if isinstance(formula, (And, Or)):
        out: frozenset[Var] = frozenset()
        for c in formula.children:
            out |= free_variables(c)
        return out
    if isinstance(formula, Implies):
        return free_variables(formula.left) | free_variables(formula.right)
    if isinstance(formula, (Exists, Forall)):
        return free_variables(formula.body) - {formula.var}
    raise TypeError(f"unknown formula node {formula!r}")


def substitute(formula: Formula, mapping: Mapping[Var, Var]) -> Formula:
    """Capture-avoiding variable renaming.

    Only variable-for-variable substitution is needed (the vocabulary has
    no terms); bound variables shadow the mapping.
    """
    if isinstance(formula, (TrueF, FalseF)):
        return formula
    if isinstance(formula, Eq):
        return Eq(mapping.get(formula.left, formula.left),
                  mapping.get(formula.right, formula.right))
    if isinstance(formula, RelAtom):
        return RelAtom(formula.index,
                       tuple(mapping.get(a, a) for a in formula.args))
    if isinstance(formula, Not):
        return Not(substitute(formula.body, mapping))
    if isinstance(formula, And):
        return And(tuple(substitute(c, mapping) for c in formula.children))
    if isinstance(formula, Or):
        return Or(tuple(substitute(c, mapping) for c in formula.children))
    if isinstance(formula, Implies):
        return Implies(substitute(formula.left, mapping),
                       substitute(formula.right, mapping))
    if isinstance(formula, (Exists, Forall)):
        inner = {k: v for k, v in mapping.items() if k != formula.var}
        if formula.var in inner.values():
            # Rename the bound variable away from the substitution range.
            fresh = _fresh_var(formula.var,
                               set(inner.values()) | free_variables(formula.body))
            body = substitute(formula.body, {formula.var: fresh})
            node = Exists if isinstance(formula, Exists) else Forall
            return node(fresh, substitute(body, inner))
        node = Exists if isinstance(formula, Exists) else Forall
        return node(formula.var, substitute(formula.body, inner))
    raise TypeError(f"unknown formula node {formula!r}")


def _fresh_var(base: Var, avoid: set[Var]) -> Var:
    i = 0
    while True:
        candidate = Var(f"{base.name}_{i}")
        if candidate not in avoid:
            return candidate
        i += 1


def validate(formula: Formula, signature: Sequence[int]) -> None:
    """Check every relational atom against a database type.

    Raises :class:`TypeSignatureError` for an out-of-range relation index
    and :class:`ArityError` for an arity mismatch.
    """
    if isinstance(formula, RelAtom):
        if not 0 <= formula.index < len(signature):
            raise TypeSignatureError(
                f"atom refers to R{formula.index + 1} but the type has "
                f"{len(signature)} relations")
        if len(formula.args) != signature[formula.index]:
            raise ArityError(
                f"atom on R{formula.index + 1} has {len(formula.args)} "
                f"arguments, relation has arity {signature[formula.index]}")
        return
    if isinstance(formula, (TrueF, FalseF, Eq)):
        return
    if isinstance(formula, Not):
        validate(formula.body, signature)
    elif isinstance(formula, (And, Or)):
        for c in formula.children:
            validate(c, signature)
    elif isinstance(formula, Implies):
        validate(formula.left, signature)
        validate(formula.right, signature)
    elif isinstance(formula, (Exists, Forall)):
        validate(formula.body, signature)
    else:
        raise TypeError(f"unknown formula node {formula!r}")


def is_quantifier_free(formula: Formula) -> bool:
    """Whether the formula belongs to the ``L⁻`` fragment."""
    if isinstance(formula, (TrueF, FalseF, Eq, RelAtom)):
        return True
    if isinstance(formula, Not):
        return is_quantifier_free(formula.body)
    if isinstance(formula, (And, Or)):
        return all(is_quantifier_free(c) for c in formula.children)
    if isinstance(formula, Implies):
        return (is_quantifier_free(formula.left)
                and is_quantifier_free(formula.right))
    if isinstance(formula, (Exists, Forall)):
        return False
    raise TypeError(f"unknown formula node {formula!r}")


def quantifier_rank(formula: Formula) -> int:
    """The quantifier rank — nesting depth of quantifiers.

    Definition 3.4's stratification: ``u #ᵣ v`` iff ``u`` and ``v``
    satisfy the same formulas of quantifier rank ≤ r.
    """
    if isinstance(formula, (TrueF, FalseF, Eq, RelAtom)):
        return 0
    if isinstance(formula, Not):
        return quantifier_rank(formula.body)
    if isinstance(formula, (And, Or)):
        return max((quantifier_rank(c) for c in formula.children), default=0)
    if isinstance(formula, Implies):
        return max(quantifier_rank(formula.left),
                   quantifier_rank(formula.right))
    if isinstance(formula, (Exists, Forall)):
        return 1 + quantifier_rank(formula.body)
    raise TypeError(f"unknown formula node {formula!r}")


def eliminate_implications(formula: Formula) -> Formula:
    """Rewrite ``p -> q`` as ``¬p ∨ q`` throughout."""
    if isinstance(formula, (TrueF, FalseF, Eq, RelAtom)):
        return formula
    if isinstance(formula, Not):
        return neg(eliminate_implications(formula.body))
    if isinstance(formula, And):
        return conj(eliminate_implications(c) for c in formula.children)
    if isinstance(formula, Or):
        return disj(eliminate_implications(c) for c in formula.children)
    if isinstance(formula, Implies):
        return disj([neg(eliminate_implications(formula.left)),
                     eliminate_implications(formula.right)])
    if isinstance(formula, Exists):
        return Exists(formula.var, eliminate_implications(formula.body))
    if isinstance(formula, Forall):
        return Forall(formula.var, eliminate_implications(formula.body))
    raise TypeError(f"unknown formula node {formula!r}")


def nnf(formula: Formula) -> Formula:
    """Negation normal form: negations pushed down to atoms."""
    formula = eliminate_implications(formula)
    return _nnf(formula, positive=True)


def _nnf(formula: Formula, positive: bool) -> Formula:
    if isinstance(formula, (Eq, RelAtom)):
        return formula if positive else Not(formula)
    if isinstance(formula, TrueF):
        return TRUE if positive else FALSE
    if isinstance(formula, FalseF):
        return FALSE if positive else TRUE
    if isinstance(formula, Not):
        return _nnf(formula.body, not positive)
    if isinstance(formula, And):
        parts = [_nnf(c, positive) for c in formula.children]
        return conj(parts) if positive else disj(parts)
    if isinstance(formula, Or):
        parts = [_nnf(c, positive) for c in formula.children]
        return disj(parts) if positive else conj(parts)
    if isinstance(formula, Exists):
        body = _nnf(formula.body, positive)
        return Exists(formula.var, body) if positive else Forall(formula.var, body)
    if isinstance(formula, Forall):
        body = _nnf(formula.body, positive)
        return Forall(formula.var, body) if positive else Exists(formula.var, body)
    raise TypeError(f"unknown formula node {formula!r}")


def dnf(formula: Formula) -> Formula:
    """Disjunctive normal form of a quantifier-free formula.

    The shape Theorem 2.1 compiles to: a disjunction of conjunctions of
    literals, one disjunct per selected ``≅ₗ`` class.
    """
    if not is_quantifier_free(formula):
        raise ValueError("dnf is defined on the quantifier-free fragment")
    formula = nnf(formula)
    clauses = _dnf_clauses(formula)
    return disj(conj(clause) for clause in clauses)


def _dnf_clauses(formula: Formula) -> list[list[Formula]]:
    if isinstance(formula, TrueF):
        return [[]]
    if isinstance(formula, FalseF):
        return []
    if isinstance(formula, (Eq, RelAtom, Not)):
        return [[formula]]
    if isinstance(formula, Or):
        out: list[list[Formula]] = []
        for c in formula.children:
            out.extend(_dnf_clauses(c))
        return out
    if isinstance(formula, And):
        clauses: list[list[Formula]] = [[]]
        for c in formula.children:
            parts = _dnf_clauses(c)
            clauses = [left + right for left in clauses for right in parts]
        return clauses
    raise TypeError(f"unexpected node in NNF quantifier-free formula: {formula!r}")


def simplify(formula: Formula) -> Formula:
    """Light syntactic simplification: rebuild through smart constructors
    and drop duplicate conjuncts/disjuncts and complementary literals."""
    if isinstance(formula, (TrueF, FalseF, RelAtom)):
        return formula
    if isinstance(formula, Eq):
        return TRUE if formula.left == formula.right else formula
    if isinstance(formula, Not):
        return neg(simplify(formula.body))
    if isinstance(formula, And):
        parts = list(dict.fromkeys(simplify(c) for c in formula.children))
        for p in parts:
            if neg(p) in parts:
                return FALSE
        return conj(parts)
    if isinstance(formula, Or):
        parts = list(dict.fromkeys(simplify(c) for c in formula.children))
        for p in parts:
            if neg(p) in parts:
                return TRUE
        return disj(parts)
    if isinstance(formula, Implies):
        return simplify(disj([neg(formula.left), formula.right]))
    if isinstance(formula, Exists):
        return Exists(formula.var, simplify(formula.body))
    if isinstance(formula, Forall):
        return Forall(formula.var, simplify(formula.body))
    raise TypeError(f"unknown formula node {formula!r}")


def prenex(formula: Formula) -> Formula:
    """Prenex normal form: all quantifiers hoisted to a leading prefix.

    The formula is first normalized (NNF), bound variables are renamed
    apart, and quantifiers are pulled out of conjunctions and
    disjunctions.  Used by tests relating quantifier rank to the
    Ehrenfeucht–Fraïssé stratification and by the Theorem 6.3 pipeline's
    introspection helpers.
    """
    counter = [0]

    def fresh(base: Var) -> Var:
        counter[0] += 1
        return Var(f"{base.name}#{counter[0]}")

    def pull(f: Formula) -> tuple[list[tuple[type, Var]], Formula]:
        if isinstance(f, (TrueF, FalseF, Eq, RelAtom)):
            return [], f
        if isinstance(f, Not):
            # NNF: negations sit on atoms only.
            return [], f
        if isinstance(f, (Exists, Forall)):
            v = fresh(f.var)
            body = substitute(f.body, {f.var: v})
            prefix, matrix = pull(body)
            return [(type(f), v)] + prefix, matrix
        if isinstance(f, (And, Or)):
            prefix: list[tuple[type, Var]] = []
            matrices = []
            for child in f.children:
                p, m = pull(child)
                prefix.extend(p)
                matrices.append(m)
            combine = conj if isinstance(f, And) else disj
            return prefix, combine(matrices)
        raise TypeError(f"unexpected node in NNF formula: {f!r}")

    prefix, matrix = pull(nnf(formula))
    out = matrix
    for kind, v in reversed(prefix):
        out = kind(v, out)
    return out


def is_prenex(formula: Formula) -> bool:
    """Whether the formula is a quantifier prefix over a QF matrix."""
    while isinstance(formula, (Exists, Forall)):
        formula = formula.body
    return is_quantifier_free(formula)


def formula_size(formula: Formula) -> int:
    """Node count — the size metric reported by the E3/E12 benchmarks."""
    if isinstance(formula, (TrueF, FalseF, Eq, RelAtom)):
        return 1
    if isinstance(formula, Not):
        return 1 + formula_size(formula.body)
    if isinstance(formula, (And, Or)):
        return 1 + sum(formula_size(c) for c in formula.children)
    if isinstance(formula, Implies):
        return 1 + formula_size(formula.left) + formula_size(formula.right)
    if isinstance(formula, (Exists, Forall)):
        return 1 + formula_size(formula.body)
    raise TypeError(f"unknown formula node {formula!r}")
