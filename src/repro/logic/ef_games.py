"""Ehrenfeucht–Fraïssé games (Section 3.2).

``u #ᵣ v`` (Definition 3.4) holds when the duplicator wins the r-round
first-order game on ``(B₁,u)`` and ``(B₂,v)``: ``u #₀ v`` iff the pointed
databases are locally isomorphic, and ``u #_{r+1} v`` iff every extension
of one side can be matched on the other so that ``#ᵣ`` still holds.

The quantifiers in the definition range over the full (infinite) domains,
so the game is made effective by *candidate pools*: callables yielding,
for the current tuple, the finitely many elements worth playing.  Two
canonical pools:

* the whole domain, for finite databases;
* the characteristic-tree children, for highly symmetric r-dbs — by
  Proposition 3.4 this loses nothing.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from ..core.database import PointedDatabase
from ..core.domain import Element
from ..core.isomorphism import locally_isomorphic

ExtensionPool = Callable[[tuple], Iterable[Element]]
"""Given the current tuple, the candidate elements for the next move."""


def finite_domain_pool(pointed: PointedDatabase) -> ExtensionPool:
    """The pool playing every element of a finite domain."""
    domain = pointed.database.domain
    if not domain.is_finite:
        raise ValueError(
            "finite_domain_pool requires a finite domain; for hs-r-dbs use "
            "the characteristic-tree pool (Proposition 3.4)")
    elements = domain.first(domain.finite_size)  # type: ignore[arg-type]
    return lambda current: elements


def bounded_window_pool(pointed: PointedDatabase, size: int) -> ExtensionPool:
    """A pool playing the first ``size`` elements of the enumeration plus
    the current tuple's own elements.

    For infinite databases this makes the game a *sound but incomplete*
    approximation: a duplicator loss within the window is a genuine loss;
    a win only certifies ``#ᵣ`` relative to the window.
    """
    base = pointed.database.domain.first(size)
    return lambda current: list(dict.fromkeys(list(current) + base))


def duplicator_wins(p1: PointedDatabase, p2: PointedDatabase, rounds: int,
                    pool1: ExtensionPool, pool2: ExtensionPool) -> bool:
    """Whether the duplicator wins the ``rounds``-round game.

    Round 0 is the local-isomorphism check; each further round lets the
    spoiler extend either side by a pool element, and the duplicator must
    answer on the other side.
    """
    if rounds < 0:
        raise ValueError("rounds must be >= 0")
    if not locally_isomorphic(p1, p2):
        return False
    if rounds == 0:
        return True
    # Spoiler plays on the left: duplicator must answer on the right.
    for a in pool1(p1.u):
        if not any(duplicator_wins(p1.extend(a), p2.extend(b), rounds - 1,
                                   pool1, pool2)
                   for b in pool2(p2.u)):
            return False
    # Spoiler plays on the right.
    for b in pool2(p2.u):
        if not any(duplicator_wins(p1.extend(a), p2.extend(b), rounds - 1,
                                   pool1, pool2)
                   for a in pool1(p1.u)):
            return False
    return True


def spoiler_strategy(p1: PointedDatabase, p2: PointedDatabase, rounds: int,
                     pool1: ExtensionPool, pool2: ExtensionPool
                     ) -> list[tuple[str, Element]] | None:
    """A winning spoiler line of play, or None if the duplicator wins.

    Each entry is ``(side, element)`` with side ``"left"``/``"right"``;
    the recorded element is a spoiler move for which *every* duplicator
    reply loses (the continuation shown is for the duplicator's best try).
    """
    if not locally_isomorphic(p1, p2):
        return []
    if rounds == 0:
        return None
    for a in pool1(p1.u):
        replies = [spoiler_strategy(p1.extend(a), p2.extend(b), rounds - 1,
                                    pool1, pool2)
                   for b in pool2(p2.u)]
        if all(r is not None for r in replies):
            best = min(replies, key=len)  # type: ignore[arg-type]
            return [("left", a)] + best  # type: ignore[operator]
    for b in pool2(p2.u):
        replies = [spoiler_strategy(p1.extend(a), p2.extend(b), rounds - 1,
                                    pool1, pool2)
                   for a in pool1(p1.u)]
        if all(r is not None for r in replies):
            best = min(replies, key=len)  # type: ignore[arg-type]
            return [("right", b)] + best  # type: ignore[operator]
    return None


def ef_equivalent_finite(p1: PointedDatabase, p2: PointedDatabase,
                         rounds: int) -> bool:
    """``u #ᵣ v`` for finite-domain databases (full-domain pools)."""
    return duplicator_wins(p1, p2, rounds,
                           finite_domain_pool(p1), finite_domain_pool(p2))


def distinguishing_rounds(p1: PointedDatabase, p2: PointedDatabase,
                          pool1: ExtensionPool, pool2: ExtensionPool,
                          max_rounds: int) -> int | None:
    """The least ``r ≤ max_rounds`` at which the spoiler wins, or None.

    Proposition 3.6: on a highly symmetric database some fixed ``r``
    distinguishes every non-equivalent pair; this measures it pairwise.
    """
    for r in range(max_rounds + 1):
        if not duplicator_wins(p1, p2, r, pool1, pool2):
            return r
    return None
