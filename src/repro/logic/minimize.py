"""Minimizing compiled ``L⁻`` formulas.

The Theorem 2.1 compiler emits one full conjunction per selected class —
sound, complete, and huge: a class formula spells out *every* atom slot.
Selected classes usually share structure (e.g. "all edges, whatever the
loops do"), so the disjunction collapses dramatically.

Within one equality pattern, the classes of a type are exactly the
points of a boolean cube whose dimensions are the atom slots
(Section 2's ``2^…`` counting).  A set of selected classes is then a
boolean function on that cube, and classic two-level minimization
applies: this module implements Quine–McCluskey prime-implicant
generation with a greedy essential cover, per equality pattern, and
reassembles a compact ``L⁻`` expression.

Guaranteed: the minimized expression selects *exactly* the same classes
(the tests re-derive them via :func:`~repro.logic.qf.classes_of_expression`).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from ..core.localtypes import LocalType, atom_slots
from ..errors import TypeSignatureError
from ..util.partitions import block_count
from .qf import QFExpression, default_variables, formula_for_local_type
from .syntax import (
    Formula,
    Not,
    RelAtom,
    Var,
    conj,
    disj,
    eq,
    neq,
)

MAX_DIMENSION = 16
"""Largest atom-slot count handled (the cube has 2^dimension points)."""


class Implicant:
    """A cube in the boolean space: ``care`` mask + ``values`` bits."""

    __slots__ = ("care", "values")

    def __init__(self, care: int, values: int):
        self.care = care
        self.values = values & care

    def covers(self, minterm: int) -> bool:
        return (minterm & self.care) == self.values

    def key(self) -> tuple[int, int]:
        return (self.care, self.values)

    def __repr__(self) -> str:
        return f"Implicant(care={self.care:b}, values={self.values:b})"


def _combine(a: Implicant, b: Implicant) -> Implicant | None:
    """Merge two cubes differing in exactly one cared bit."""
    if a.care != b.care:
        return None
    diff = a.values ^ b.values
    if diff == 0 or diff & (diff - 1):
        return None  # zero or more than one differing bit
    return Implicant(a.care & ~diff, a.values & ~diff)


def prime_implicants(minterms: set[int], dimension: int) -> list[Implicant]:
    """All prime implicants of the function given by its minterms."""
    full_care = (1 << dimension) - 1
    current = {(full_care, m & full_care) for m in minterms}
    primes: set[tuple[int, int]] = set()
    while current:
        items = [Implicant(c, v) for (c, v) in current]
        merged: set[tuple[int, int]] = set()
        used: set[tuple[int, int]] = set()
        for i, a in enumerate(items):
            for b in items[i + 1:]:
                combined = _combine(a, b)
                if combined is not None:
                    merged.add(combined.key())
                    used.add(a.key())
                    used.add(b.key())
        primes.update(k for k in current if k not in used)
        current = merged
    return [Implicant(c, v) for (c, v) in sorted(primes)]


def greedy_cover(minterms: set[int],
                 primes: Sequence[Implicant]) -> list[Implicant]:
    """Essential primes first, then greedy set cover of the rest."""
    chosen: list[Implicant] = []
    remaining = set(minterms)

    # Essential: a minterm covered by exactly one prime.
    for m in sorted(minterms):
        covering = [p for p in primes if p.covers(m)]
        if len(covering) == 1 and covering[0] not in chosen:
            chosen.append(covering[0])
    for p in chosen:
        remaining -= {m for m in remaining if p.covers(m)}

    while remaining:
        best = max(primes,
                   key=lambda p: sum(1 for m in remaining if p.covers(m)))
        gained = {m for m in remaining if best.covers(m)}
        if not gained:
            raise AssertionError("prime implicants fail to cover minterms")
        chosen.append(best)
        remaining -= gained
    return chosen


def _pattern_formula(pattern: tuple[int, ...],
                     variables: Sequence[Var]) -> Formula:
    parts = []
    for i in range(len(pattern)):
        for j in range(i + 1, len(pattern)):
            if pattern[i] == pattern[j]:
                parts.append(eq(variables[i], variables[j]))
            else:
                parts.append(neq(variables[i], variables[j]))
    return conj(parts)


def _implicant_formula(implicant: Implicant, slots, pattern,
                       variables: Sequence[Var]) -> Formula:
    rep_position: dict[int, int] = {}
    for pos, b in enumerate(pattern):
        rep_position.setdefault(b, pos)
    literals = []
    for bit, (rel, blk) in enumerate(slots):
        if not implicant.care >> bit & 1:
            continue
        args = tuple(variables[rep_position[b]] for b in blk)
        atom = RelAtom(rel, args)
        literals.append(atom if implicant.values >> bit & 1 else Not(atom))
    return conj(literals)


def minimize_classes(classes: Iterable[LocalType],
                     name: str = "E") -> QFExpression:
    """A compact ``L⁻`` expression selecting exactly the given classes.

    Classes are grouped by equality pattern; within each group the atom
    truth-vectors are minimized by Quine–McCluskey; the result is the
    disjunction over groups of (pattern constraints ∧ minimized cover).
    """
    classes = list(classes)
    if not classes:
        raise ValueError("minimize_classes needs at least one class")
    signatures = {c.signature for c in classes}
    ranks = {c.rank for c in classes}
    if len(signatures) != 1 or len(ranks) != 1:
        raise TypeSignatureError(
            "classes must share one database type and one rank")
    signature = signatures.pop()
    rank = ranks.pop()
    variables = default_variables(rank)

    by_pattern: dict[tuple[int, ...], list[LocalType]] = {}
    for c in classes:
        by_pattern.setdefault(c.pattern, []).append(c)

    disjuncts: list[Formula] = []
    for pattern, group in sorted(by_pattern.items()):
        slots = atom_slots(signature, block_count(pattern))
        if len(slots) > MAX_DIMENSION:
            # Fall back to the verbatim compiler for huge cubes.
            disjuncts.extend(formula_for_local_type(c, variables)
                             for c in group)
            continue
        index = {slot: bit for bit, slot in enumerate(slots)}
        minterms = set()
        for c in group:
            m = 0
            for atom in c.atoms:
                m |= 1 << index[atom]
            minterms.add(m)
        if len(minterms) == 1 << len(slots):
            # Every atom combination selected: the pattern alone suffices.
            disjuncts.append(_pattern_formula(pattern, variables))
            continue
        primes = prime_implicants(minterms, len(slots))
        cover = greedy_cover(minterms, primes)
        pattern_part = _pattern_formula(pattern, variables)
        for implicant in cover:
            disjuncts.append(conj([
                pattern_part,
                _implicant_formula(implicant, slots, pattern, variables),
            ]))
    return QFExpression(variables, disj(disjuncts), name=name)


def minimize_expression(expression: QFExpression,
                        signature: Sequence[int]) -> QFExpression:
    """Minimize any ``L⁻`` expression: derive its classes, re-emit
    compactly.  Semantics-preserving by construction."""
    from .qf import classes_of_expression

    classes = classes_of_expression(expression, signature)
    if not classes:
        return expression
    return minimize_classes(classes, name=expression.name)
