"""First-order logic substrate and the paper's logical query languages.

* :mod:`repro.logic.syntax`, :mod:`repro.logic.parser`,
  :mod:`repro.logic.printer`, :mod:`repro.logic.transform` — the FO
  toolkit (AST, concrete syntax, normal forms, quantifier rank).
* :mod:`repro.logic.qf` — ``L⁻`` and Theorem 2.1 in both directions,
  plus ``L⁻ₙ`` (Proposition 2.7).
* :mod:`repro.logic.ef_games` — Ehrenfeucht–Fraïssé games (Section 3.2).
* :mod:`repro.logic.hintikka` — r-round characteristic formulas over
  characteristic trees.
* :mod:`repro.logic.evaluator` — full FO over hs-r-dbs with quantifiers
  relativized to tree representatives (Theorem 6.3).
"""

from .evaluator import (
    agrees_with_predicate,
    evaluate,
    holds_sentence,
    relation_from_formula,
)
from .hintikka import hintikka_disjunction, hintikka_formula, hintikka_table
from .ef_games import (
    bounded_window_pool,
    distinguishing_rounds,
    duplicator_wins,
    ef_equivalent_finite,
    finite_domain_pool,
    spoiler_strategy,
)
from .minimize import minimize_classes, minimize_expression
from .parser import parse
from .printer import to_text
from .qf import (
    QFExpression,
    RestrictedExpression,
    UNDEFINED_EXPRESSION,
    UndefinedExpression,
    classes_of_expression,
    default_variables,
    evaluate_qf,
    expression_for_classes,
    expression_for_query,
    formula_for_local_type,
    query_of_expression,
)
from .syntax import (
    FALSE,
    TRUE,
    And,
    Eq,
    Exists,
    FalseF,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    RelAtom,
    TrueF,
    Var,
    atom,
    conj,
    disj,
    eq,
    exists,
    exists_all,
    forall,
    forall_all,
    implies,
    neg,
    neq,
    var,
    variables,
)
from .transform import (
    dnf,
    is_prenex,
    prenex,
    eliminate_implications,
    formula_size,
    free_variables,
    is_quantifier_free,
    nnf,
    quantifier_rank,
    simplify,
    substitute,
    validate,
)

__all__ = [
    "And", "Eq", "Exists", "FALSE", "FalseF", "Forall", "Formula",
    "Implies", "Not", "Or", "QFExpression", "RelAtom",
    "RestrictedExpression", "TRUE", "TrueF", "UNDEFINED_EXPRESSION",
    "UndefinedExpression", "Var",
    "agrees_with_predicate", "atom", "bounded_window_pool",
    "classes_of_expression", "conj", "evaluate", "hintikka_disjunction",
    "hintikka_formula", "hintikka_table", "holds_sentence",
    "relation_from_formula",
    "default_variables", "disj", "distinguishing_rounds", "dnf",
    "duplicator_wins", "ef_equivalent_finite", "eliminate_implications",
    "eq", "evaluate_qf", "exists", "exists_all", "expression_for_classes",
    "expression_for_query", "finite_domain_pool", "forall", "forall_all",
    "formula_for_local_type", "formula_size", "free_variables", "implies",
    "is_prenex", "is_quantifier_free", "minimize_classes",
    "minimize_expression", "neg", "neq", "nnf", "parse",
    "prenex", "quantifier_rank",
    "query_of_expression", "simplify", "spoiler_strategy", "substitute",
    "to_text", "validate", "var", "variables",
]
