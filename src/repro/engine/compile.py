"""The compile-to-closure execution backend.

:func:`compile_plan` turns a prepared (normalized + optimized) plan
into a tree of nested Python closures, one per *materialization
boundary*, eliminating the interpreter's per-node dispatch on the hot
path and — more importantly — fusing filter chains into single
comprehensions so that cheap coordinate predicates run *before* the
oracle-backed work they guard:

* a chain of :class:`~repro.engine.plan.FilterEq` /
  :class:`~repro.engine.plan.FilterAtom` nodes over a source compiles
  to one pass applying the predicates innermost-first;
* a filter chain over a :class:`~repro.engine.plan.Join` fuses *into*
  the join's level scan: equality predicates prune a candidate path
  before the join pays a single canonicalization for it;
* a join operand that is statically :class:`~repro.engine.plan.
  FullScan` drops its membership test entirely (the canonicalized
  split always lands in the level), and a rank-0 operand becomes a
  constant guard;
* a :class:`~repro.engine.plan.Complement` directly under an
  :class:`~repro.engine.plan.Intersect` becomes a ``p ∉ inner``
  predicate — the complemented level set is never materialized;
* when the *root* is statically rank 0 under an ``∃``-chain, the chain
  consumes its source lazily and stops at the first witness.

**Contract with the interpreted path** (``docs/optimizer.md``): the
compiled backend produces bit-for-bit identical
:class:`~repro.qlhs.interpreter.Value` results, raises the same
rank/signature errors, and keeps a result-cache probe (and a per-node
timing record) at every boundary — every plan node except fused filter
interiors, fused-source scans, and predicate-fused complements — so
cross-query subplan sharing and ``EngineStats`` observability survive
compilation.  Oracle-question *counts* may be lower than interpreted
(that is the point); the answers may not differ.  Fixpoint nodes
delegate to the interpreter under the active budget.  Nodes listed in
``shared`` (the batch common-subplan set) are never fused through:
they keep their boundary so batch members can share the entry.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from ..errors import RankMismatchError
from ..qlhs.interpreter import Value
from .cache import ResultCache
from .plan import (
    EXISTS,
    Complement,
    Empty,
    Extend,
    FilterAtom,
    FilterEq,
    FullScan,
    Intersect,
    Join,
    Plan,
    Project,
    Quantify,
    Scan,
    Union,
    plan_rank,
)

_MISS = object()


@dataclass(frozen=True)
class CompiledPlan:
    """One compiled plan: call :meth:`run` under an active engine
    budget (``Engine.evaluate`` installs it)."""

    plan: Plan
    boundaries: int
    _run: Callable[[], Value]

    def run(self) -> Value:
        """Evaluate to a :class:`~repro.qlhs.interpreter.Value`.

        A fresh per-run memo makes repeated subtrees within the plan
        evaluate once; boundary results go through the engine's shared
        result cache, so runs warm each other and the interpreted path
        alike.
        """
        return self._run()


class _CNode:
    """One compiled boundary: an eagerly-computing closure plus an
    optional lazy path iterator (duplicates allowed; used only for
    nonemptiness early exit)."""

    __slots__ = ("plan", "kind", "compute", "lazy")

    def __init__(self, plan: Plan, compute, lazy=None):
        self.plan = plan
        self.kind = type(plan).__name__
        self.compute = compute
        self.lazy = lazy


def _resolved_eq(spec: FilterEq, n: int) -> tuple[int, int]:
    """Validated, resolved ``FilterEq`` indices (interpreter parity)."""
    i = spec.i if spec.i >= 0 else n + spec.i
    j = spec.j if spec.j >= 0 else n + spec.j
    if not (0 <= i < n and 0 <= j < n):
        raise RankMismatchError(
            f"FilterEq({spec.i}, {spec.j}) out of range for rank {n}")
    return i, j


class _Compiler:
    """Compiles one plan for one engine (db, caches, stats)."""

    def __init__(self, engine, shared: frozenset[Plan]):
        self.engine = engine
        self.db = engine.db
        self.shared = shared
        self.results = engine.cache.results
        self.fingerprint = engine.fingerprint
        self._nodes: dict[Plan, _CNode] = {}
        self._ranks: dict[Plan, int | None] = {}
        self.boundaries = 0

    # -- plumbing ------------------------------------------------------------

    def compile(self, plan: Plan) -> CompiledPlan:
        """Compile ``plan`` into a :class:`CompiledPlan`."""
        root = self._node(plan)

        def run() -> Value:
            return self._execute(root, {})

        return CompiledPlan(plan, self.boundaries, run)

    def _static_rank(self, plan: Plan) -> int | None:
        """Static rank via the engine signature, ``None`` if unknown —
        lazy early-exit paths are gated on it (a known static rank
        means the whole subtree rank-checked, so skipping the runtime
        checks cannot hide an error)."""
        rank = self._ranks.get(plan, _MISS)
        if rank is _MISS:
            try:
                rank = plan_rank(plan, self.engine.signature)
            except Exception:  # noqa: BLE001 — dynamic/invalid: no laziness
                rank = None
            self._ranks[plan] = rank
        return rank

    def _execute(self, node: _CNode, memo: dict) -> Value:
        """Run one boundary's closure with interpreter-parity timing
        (exclusive per-node seconds via the engine's per-thread
        stack)."""
        engine = self.engine
        child_time = engine._child_time()
        start = time.perf_counter()
        child_time.append(0.0)
        try:
            value = node.compute(memo)
        finally:
            child_seconds = child_time.pop()
            total = time.perf_counter() - start
            if child_time:
                child_time[-1] += total
            engine._stats.record_node(node.kind,
                                      max(total - child_seconds, 0.0))
        return value

    def _value(self, node: _CNode, memo: dict) -> Value:
        """A boundary's value: per-run memo, then the shared result
        cache (counted as a *shared* probe), then compute-and-fill."""
        value = memo.get(node.plan, _MISS)
        if value is not _MISS:
            return value
        key = ResultCache.key(self.fingerprint, node.plan, ())
        value = self.results.get(key, _MISS, shared=True)
        if value is _MISS:
            value = self._execute(node, memo)
            self.results.put(key, value)
        memo[node.plan] = value
        return value

    def _getter(self, plan: Plan):
        """``memo -> Value`` for a child boundary."""
        node = self._node(plan)
        return lambda memo: self._value(node, memo)

    # -- node dispatch -------------------------------------------------------

    def _node(self, plan: Plan) -> _CNode:
        node = self._nodes.get(plan)
        if node is None:
            node = self._compile_node(plan)
            self._nodes[plan] = node
            self.boundaries += 1
        return node

    def _compile_node(self, plan: Plan) -> _CNode:
        db = self.db
        if isinstance(plan, Scan):
            def compute(memo, plan=plan):
                if not 0 <= plan.index < db.k:
                    from ..errors import TypeSignatureError
                    raise TypeSignatureError(
                        f"Scan({plan.index}) out of range for type "
                        f"{db.signature}")
                return Value(db.signature[plan.index],
                             db.representatives[plan.index])
            return _CNode(plan, compute)
        if isinstance(plan, FullScan):
            rank = plan.rank
            return _CNode(
                plan,
                lambda memo: Value(rank, frozenset(db.tree.level(rank))),
                lambda memo: iter(db.tree.level(rank)))
        if isinstance(plan, Empty):
            rank = plan.rank
            return _CNode(plan, lambda memo: Value(rank, frozenset()),
                          lambda memo: iter(()))
        if isinstance(plan, (FilterEq, FilterAtom)):
            return self._compile_chain(plan)
        if isinstance(plan, Join):
            return self._compile_join(plan, [])
        if isinstance(plan, Project):
            return self._compile_project(plan)
        if isinstance(plan, Extend):
            return self._compile_extend(plan)
        if isinstance(plan, Quantify):
            return self._compile_quantify(plan)
        if isinstance(plan, Union):
            return self._compile_union(plan)
        if isinstance(plan, Intersect):
            return self._compile_intersect(plan)
        if isinstance(plan, Complement):
            return self._compile_complement(plan)
        # Fixpoints (and anything unknown / mis-typed, e.g. an
        # FcfFixpoint reaching an hs engine): delegate to the
        # interpreter's node semantics — same errors, same budget.
        engine = self.engine
        return _CNode(plan,
                      lambda memo, plan=plan: engine._execute_node(plan))

    # -- fused filter chains -------------------------------------------------

    def _peel_chain(self, plan: Plan) -> tuple[list[Plan], Plan]:
        """The fusable filter chain at ``plan`` (outermost first) and
        its base; peeling stops at batch-shared interior nodes."""
        specs = [plan]
        cursor = plan.child  # type: ignore[attr-defined]
        while (isinstance(cursor, (FilterEq, FilterAtom))
               and cursor not in self.shared):
            specs.append(cursor)
            cursor = cursor.child
        return specs, cursor

    def _predicates(self, specs: list[Plan], n: int) -> list:
        """Validated predicate closures, innermost-first (interpreter
        evaluates the innermost filter first, so validation errors
        surface in the same order)."""
        db = self.db
        preds = []
        for spec in reversed(specs):
            if isinstance(spec, FilterEq):
                i, j = _resolved_eq(spec, n)
                preds.append(lambda p, i=i, j=j: p[i] == p[j])
            else:
                if any(not 0 <= c < n for c in spec.positions):
                    raise RankMismatchError(
                        f"FilterAtom positions {spec.positions} out of "
                        f"range for rank {n}")
                preds.append(
                    lambda p, s=spec: db.contains(
                        s.index,
                        tuple(p[c] for c in s.positions)) != s.negate)
        return preds

    def _compile_chain(self, plan: Plan) -> _CNode:
        specs, base = self._peel_chain(plan)
        if isinstance(base, Join) and base not in self.shared:
            return self._compile_join(plan, specs, join=base)
        if isinstance(base, FullScan):
            db, rank = self.db, base.rank

            def compute(memo, specs=specs, rank=rank):
                preds = self._predicates(specs, rank)
                return Value(rank, frozenset(
                    p for p in db.tree.level(rank)
                    if all(f(p) for f in preds)))

            def lazy(memo, specs=specs, rank=rank):
                preds = self._predicates(specs, rank)
                return (p for p in db.tree.level(rank)
                        if all(f(p) for f in preds))

            return _CNode(plan, compute, lazy)

        get = self._getter(base)

        def compute(memo, specs=specs):
            body = get(memo)
            preds = self._predicates(specs, body.rank)
            return Value(body.rank, frozenset(
                p for p in body.paths if all(f(p) for f in preds)))

        def lazy(memo, specs=specs):
            body = get(memo)
            preds = self._predicates(specs, body.rank)
            return (p for p in body.paths if all(f(p) for f in preds))

        return _CNode(plan, compute, lazy)

    # -- joins (with fused outer filters and nested-join flattening) ---------

    def _join_operands(self, join: Join, out: list[Plan]) -> None:
        """Flatten a (non-shared) nested-join tree into its operand
        sequence, left to right — one level scan instead of one
        materialization per join node, so outer filters prune
        candidates before *any* inner operand pays a
        canonicalization."""
        for side in (join.left, join.right):
            if isinstance(side, Join) and side not in self.shared:
                self._join_operands(side, out)
            else:
                out.append(side)

    def _compile_join(self, plan: Plan, specs: list[Plan],
                      join: Join | None = None) -> _CNode:
        join = join if join is not None else plan  # type: ignore[assignment]
        db = self.db
        operands: list[Plan] = []
        self._join_operands(join, operands)
        # A FullScan operand needs no membership test at all: the
        # canonicalized split of a level path is always in its level.
        getters = [None if isinstance(op, FullScan) else self._getter(op)
                   for op in operands]
        fs_ranks = [op.rank if isinstance(op, FullScan) else None
                    for op in operands]

        def scan(memo):
            """The fused candidate stream: (total_rank, iterator)."""
            segments = []  # (start, width, paths | None)
            offset = 0
            empty = False
            for get, fs_rank in zip(getters, fs_ranks):
                if get is None:
                    segments.append((offset, fs_rank, None))
                    offset += fs_rank
                    continue
                value = get(memo)
                if value.rank == 0:
                    # A rank-0 operand is a constant guard on the
                    # whole join, not a per-path test.
                    if () not in value.paths:
                        empty = True
                else:
                    segments.append((offset, value.rank, value.paths))
                    offset += value.rank
            total = offset
            if empty:
                return total, iter(())
            preds = self._predicates(specs, total) if specs else ()
            # Membership tests ordered cheap-first: the leading
            # segment of a path is itself a path (already canonical,
            # zero oracle questions); every later segment pays one
            # canonicalization per surviving candidate.
            tests = [(s, w, p) for s, w, p in segments if p is not None]
            tests.sort(key=lambda t: t[0] != 0)
            canon = db.canonical_representative

            def stream():
                for r in db.tree.level(total):
                    if preds and not all(f(r) for f in preds):
                        continue
                    for start, width, paths in tests:
                        part = r[start:start + width]
                        piece = part if start == 0 else canon(part)
                        if piece not in paths:
                            break
                    else:
                        yield r
            return total, stream()

        def compute(memo):
            total, stream = scan(memo)
            return Value(total, frozenset(stream))

        def lazy(memo):
            return scan(memo)[1]

        return _CNode(plan, compute, lazy)

    # -- the remaining node kinds --------------------------------------------

    def _compile_project(self, plan: Project) -> _CNode:
        db, get = self.db, self._getter(plan.child)

        def compute(memo, plan=plan):
            body = get(memo)
            if any(not 0 <= c < body.rank for c in plan.coords):
                raise RankMismatchError(
                    f"Project coords {plan.coords} out of range for "
                    f"rank {body.rank}")
            return Value(len(plan.coords), frozenset(
                db.canonical_representative(
                    tuple(p[c] for c in plan.coords))
                for p in body.paths))

        return _CNode(plan, compute)

    def _compile_extend(self, plan: Extend) -> _CNode:
        db, get = self.db, self._getter(plan.child)

        def compute(memo):
            body = get(memo)
            return Value(body.rank + 1, frozenset(
                p + (a,) for p in body.paths
                for a in db.tree.children(p)))

        def lazy(memo):
            body = get(memo)
            return (p + (a,) for p in body.paths
                    for a in db.tree.children(p))

        return _CNode(plan, compute, lazy)

    def _compile_quantify(self, plan: Quantify) -> _CNode:
        db = self.db
        child_node = self._node(plan.child)
        get = lambda memo: self._value(child_node, memo)  # noqa: E731

        if plan.kind == EXISTS:
            if (self._static_rank(plan) == 0
                    and child_node.lazy is not None):
                # A rank-0 ∃ is nonemptiness of its (statically
                # rank-checked) source: consume it lazily and stop at
                # the first witness — the child is never materialized.
                def compute(memo):
                    witness = any(True for __ in child_node.lazy(memo))
                    return Value(0, frozenset([()]) if witness
                                 else frozenset())
                return _CNode(plan, compute)

            def compute(memo):
                body = get(memo)
                if body.rank == 0:
                    raise RankMismatchError("Quantify needs rank >= 1")
                return Value(body.rank - 1,
                             frozenset(p[:-1] for p in body.paths))

            lazy = None
            if (self._static_rank(plan) is not None
                    and child_node.lazy is not None):
                def lazy(memo):  # noqa: F811 — deliberate rebind
                    return (p[:-1] for p in child_node.lazy(memo))
            return _CNode(plan, compute, lazy)

        def compute(memo):
            body = get(memo)
            if body.rank == 0:
                raise RankMismatchError("Quantify needs rank >= 1")
            rank = body.rank - 1
            paths = body.paths
            return Value(rank, frozenset(
                p for p in db.tree.level(rank)
                if all(p + (a,) in paths
                       for a in db.tree.children(p))))

        return _CNode(plan, compute)

    def _compile_union(self, plan: Union) -> _CNode:
        nodes = [self._node(c) for c in plan.children]

        def compute(memo):
            parts = [self._value(n, memo) for n in nodes]
            rank = _common_rank(parts, "Union")
            return Value(rank,
                         frozenset().union(*(v.paths for v in parts)))

        lazy = None
        if (self._static_rank(plan) is not None
                and all(n.lazy is not None for n in nodes)):
            def lazy(memo):  # noqa: F811 — deliberate rebind
                for node in nodes:
                    yield from node.lazy(memo)
        return _CNode(plan, compute, lazy)

    def _compile_intersect(self, plan: Intersect) -> _CNode:
        db = self.db
        positive: list[_CNode] = []
        negative: list[_CNode] = []  # fused ∁ children: test p ∉ inner
        for child in plan.children:
            if isinstance(child, Complement) and child not in self.shared:
                negative.append(self._node(child.child))
            else:
                positive.append(self._node(child))

        def compute(memo):
            pos = [self._value(n, memo) for n in positive]
            neg = [self._value(n, memo) for n in negative]
            rank = _common_rank(pos + neg, "Intersect")
            if pos:
                paths = set(pos[0].paths)
                for v in pos[1:]:
                    paths &= v.paths
            else:
                paths = set(db.tree.level(rank))
            for v in neg:
                paths -= v.paths
            return Value(rank, frozenset(paths))

        return _CNode(plan, compute)

    def _compile_complement(self, plan: Complement) -> _CNode:
        db, get = self.db, self._getter(plan.child)

        def compute(memo):
            body = get(memo)
            level = frozenset(db.tree.level(body.rank))
            return Value(body.rank, level - body.paths)

        return _CNode(plan, compute)


def _common_rank(parts, what: str) -> int:
    """Interpreter-parity common-rank check."""
    if not parts:
        raise RankMismatchError(f"{what} needs at least one child")
    ranks = {v.rank for v in parts}
    if len(ranks) != 1:
        raise RankMismatchError(
            f"{what} over mixed ranks {sorted(ranks)}")
    return ranks.pop()


def compile_plan(engine, plan: Plan,
                 shared: frozenset[Plan] = frozenset()) -> CompiledPlan:
    """Compile a prepared plan for ``engine``.

    ``shared`` lists subplans that must keep a result-cache boundary
    (``Engine.eval_batch`` passes the cross-batch common-subplan set).
    The returned object is immutable and thread-safe to :meth:`~
    CompiledPlan.run` concurrently; engines memoize it per
    ``(plan, shared)``.
    """
    return _Compiler(engine, shared).compile(plan)
