"""Multi-process sharded execution: beating the GIL on batch work.

The engine's thread-pool batch path (:meth:`Engine.batch_contains
<repro.engine.executor.Engine.batch_contains>` with ``parallel=True``)
parallelizes *waiting*, not *computing*: every membership test holds
the GIL while it canonicalizes paths, so on real hardware a CPU-bound
batch runs on one core.  This module adds the process-pool backend —
the architecture is the paper's own completeness argument turned into
systems leverage: the four frontends provably compute one semantics,
results are keyed by structural database *fingerprint* (genericity,
Definition 2.4), and plans have a content-hash identity
(:mod:`repro.store.codec`) — so work can be shipped to another process
and the answers merged back with bit-for-bit confidence, checkable by
the existing differential oracles.

Architecture (``docs/sharding.md``):

* **Shard key** — :func:`shard_index` hashes ``(database fingerprint,
  member payload)`` with SHA-256 and reduces modulo the worker count.
  Deterministic and content-based: the same batch shards the same way
  in every process, on every run.
* **Serialization boundary** — plans cross as
  :func:`~repro.store.codec.canonical_plan_text`, databases as the
  declarative :class:`~repro.serve.config.DatabaseSpec` JSON entry
  (:func:`derive_spec` recovers one from a live builtin/fcf database),
  budgets as :meth:`Budget.ship <repro.trace.Budget.ship>`, verdicts
  and :class:`~repro.engine.stats.EngineStats` as their JSON codecs,
  and trace spans as :meth:`Span.to_record
  <repro.trace.spans.Span.to_record>` rows.
* **Workers** — each worker process keeps a private warm
  :class:`~repro.engine.cache.EngineCache` and one engine per
  ``(spec, view, optimize, compiled)``; it verifies the rebuilt
  database's fingerprint against the coordinator's before answering.
* **The join** — verdicts/answers merge in request order (ordered
  merge), worker budget counters are re-aggregated exactly onto the
  coordinator's per-shard :meth:`~repro.trace.Budget.fork` via
  :meth:`~repro.trace.Budget.absorb`, worker stats fold in through
  :meth:`MutableEngineStats.absorb
  <repro.engine.stats.MutableEngineStats.absorb>`, and worker spans
  are re-parented under the coordinator's span via
  :func:`~repro.trace.spans.replay_records` — the cross-process
  extension of the PR 4 ``propagate_span`` contract.
* **Fallbacks** — ``workers <= 1`` and databases without a shippable
  spec run in-process; a plan that cannot serialize
  (:class:`~repro.store.codec.UnserializablePlanError`, i.e.
  :class:`~repro.engine.plan.MachineFixpoint`) is evaluated locally
  while its batch-mates still fan out.

Entry points: :meth:`Engine.eval_batch(workers=N)
<repro.engine.executor.Engine.eval_batch>` /
:meth:`Engine.batch_contains(workers=N)
<repro.engine.executor.Engine.batch_contains>`, ``python -m repro
check --workers N``, and the serving tier's ``[server] workers`` knob.
:class:`WorkerPool` is the shared pool/shipping substrate
(:mod:`repro.store.ingest` fans out over it too).
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor

from ..errors import OutOfFuel, RepresentationError, TypeSignatureError
from ..trace import Budget, limits, span
from ..trace.spans import active_recorder, current_span, replay_records

__all__ = [
    "ShardExecutor",
    "ShardTaskError",
    "UnshardableDatabaseError",
    "WorkerPool",
    "derive_spec",
    "shard_index",
]

#: Builder identities (database ``name``) of the builtin hs-r-dbs,
#: mapped to their ``kind: builtin`` config source names.
_BUILTIN_SOURCES = {
    "clique": "clique",
    "rado": "rado",
    "triangles": "triangles",
    "K3+K2": "k3k2",
}


class UnshardableDatabaseError(TypeSignatureError):
    """No shippable construction recipe exists for this database.

    Raised by :func:`derive_spec` when a live database is neither a
    known builtin nor an fcf-r-db; callers with a declarative spec
    (the serving catalog, the ingest pipeline) pass ``spec=``
    explicitly instead.  The engine entry points catch this and fall
    back to in-process execution.
    """


class ShardTaskError(RuntimeError):
    """A worker process failed to answer a shard task.

    Carries the worker-side error text.  Raised at the join — worker
    failures never crash the pool, they come back as error payloads.
    """


def shard_index(fingerprint: str, payload: str, shards: int) -> int:
    """The shard-key contract: which of ``shards`` workers owns one
    batch member.

    SHA-256 over ``(database fingerprint, member payload)`` reduced
    modulo the shard count — a pure function of content, so the same
    member lands on the same shard in every process and every run
    (``payload`` is the member's canonical plan text, plus the tuple
    rendering for membership batches).
    """
    digest = hashlib.sha256(
        f"{fingerprint}\x1f{payload}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % max(1, shards)


def derive_spec(db) -> dict:
    """A shippable ``{"name", "entry"}`` recipe for a live database.

    The inverse problem of :func:`repro.serve.catalog._build_database`:
    builtin hs-r-dbs are recognized by builder identity (their
    ``name``), fcf-r-dbs serialize their finite parts directly (the
    Definition 4.1 representation *is* the recipe).  Anything else —
    a finite-embedded hs-r-db built in memory, a hand-rolled database —
    raises :class:`UnshardableDatabaseError`; callers that know the
    construction pass the spec explicitly.  Workers verify the rebuilt
    database's fingerprint, so a wrong recipe can never produce a
    silently wrong answer.
    """
    from ..fcf.database import FcfDatabase

    if isinstance(db, FcfDatabase):
        if not db.relations:
            raise UnshardableDatabaseError(
                "cannot ship an fcf database with no relations")
        entry = {"kind": "fcf", "relations": [
            {"rank": value.rank,
             "tuples": [list(t) for t in sorted(value.tuples)],
             **({"cofinite": True} if value.cofinite else {})}
            for value in db.relations]}
        return {"name": db.name, "entry": entry}
    name = getattr(db, "name", "")
    source = _BUILTIN_SOURCES.get(name)
    if source is not None:
        return {"name": name, "entry": {"kind": "builtin",
                                        "source": source}}
    raise UnshardableDatabaseError(
        f"no shippable spec for database {name!r} "
        f"({type(db).__name__}); pass spec= explicitly")


# -- the process pool ---------------------------------------------------------

def _mp_context():
    """The multiprocessing context worker pools start from.

    ``forkserver`` where available (Linux, macOS): children fork from a
    clean single-threaded server process, so pools are safe to start
    from threaded parents (the serving tier, the stress hammers) — the
    classic fork-with-threads deadlock cannot happen — and, with this
    module preloaded into the server, each worker forks already warm.
    ``spawn`` elsewhere.
    """
    try:
        ctx = multiprocessing.get_context("forkserver")
    except ValueError:  # pragma: no cover - platform without forkserver
        return multiprocessing.get_context("spawn")
    try:
        ctx.set_forkserver_preload(["repro.engine.shard"])
    except Exception:  # pragma: no cover - best-effort warm start
        pass
    return ctx


class WorkerPool:
    """A lazily started process pool with an in-process fallback.

    The shared fan-out substrate of the sharded executor, the check
    campaign (``--workers``), and the ingest pipeline: ``workers <= 1``
    means no pool is ever created and :meth:`submit`/:meth:`map` run
    the callable inline — the graceful-degradation contract every
    caller relies on.  Tasks and results must pickle (the shard
    protocol keeps them JSON-safe); submitted callables must be
    importable module-level functions.

    Thread-safe: many threads may submit concurrently (the serving
    tier does).  The underlying :class:`ProcessPoolExecutor` starts on
    first parallel use and is shut down by :meth:`close` (also a
    context manager).
    """

    def __init__(self, workers: int | None = None):
        cpu = os.cpu_count() or 1
        self.workers = max(1, int(workers if workers is not None else cpu))
        self._pool: ProcessPoolExecutor | None = None
        self._lock = threading.Lock()

    @property
    def parallel(self) -> bool:
        """Whether this pool fans out at all (``workers > 1``)."""
        return self.workers > 1

    def _ensure(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=_mp_context())
            return self._pool

    def submit(self, fn, *args) -> Future:
        """Submit one task; inline (already-completed future) when
        ``workers <= 1``."""
        if not self.parallel:
            future: Future = Future()
            try:
                future.set_result(fn(*args))
            except BaseException as exc:  # mirror the pool's contract
                future.set_exception(exc)
            return future
        return self._ensure().submit(fn, *args)

    def map(self, fn, tasks) -> list:
        """Run ``fn`` over ``tasks``, preserving order; sequential and
        in-process when ``workers <= 1`` (or for a single task)."""
        tasks = list(tasks)
        if not self.parallel or len(tasks) <= 1:
            return [fn(task) for task in tasks]
        return list(self._ensure().map(fn, tasks))

    def close(self) -> None:
        """Shut the pool down (idempotent; in-flight work is dropped)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- the worker side ----------------------------------------------------------

#: Per-worker-process state: one warm :class:`EngineCache` shared by
#: every engine this worker builds, plus the engines themselves keyed
#: by ``(name, entry, view, optimize, compiled)``.  Worker processes
#: execute one task at a time, so no locking is needed here.
_WORKER_STATE: dict = {"cache": None, "engines": {}}


def _worker_engine(name: str, entry_json: str, view: str,
                   optimize: bool, compiled: bool):
    """The (cached) worker-side engine over one rebuilt database."""
    from ..serve.catalog import _build_database
    from ..serve.config import _database_spec
    from .cache import EngineCache
    from .executor import Engine

    key = (name, entry_json, view, optimize, compiled)
    engines = _WORKER_STATE["engines"]
    engine = engines.get(key)
    if engine is not None:
        return engine
    if _WORKER_STATE["cache"] is None:
        _WORKER_STATE["cache"] = EngineCache()
    spec = _database_spec(name, json.loads(entry_json))
    hsdb, fcf_db = _build_database(spec)
    db = fcf_db if view == "fcf" else hsdb
    if db is None:
        raise TypeSignatureError(
            f"database {name!r} (kind {spec.kind!r}) has no "
            f"{view!r} view")
    engine = Engine(db, cache=_WORKER_STATE["cache"],
                    optimize=optimize, compiled=compiled)
    engines[key] = engine
    return engine


def _worker_main(task: dict) -> dict:
    """One shard task, answered with a JSON-safe payload.

    Never raises: worker-side failures come back as
    ``{"ok": False, "error": ...}`` so a bad member cannot poison the
    pool for its batch-mates.
    """
    try:
        return _run_task(task)
    except BaseException as exc:  # ship the failure to the join
        return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}


def _run_task(task: dict) -> dict:
    from contextlib import ExitStack

    from ..store.codec import plan_from_json, verdict_to_json
    from ..trace import TraceRecorder, recording

    epoch = time.monotonic()
    recorder = None
    with ExitStack() as stack:
        if task.get("trace"):
            recorder = TraceRecorder()
            stack.enter_context(recording(recorder))
        engine = _worker_engine(task["name"], task["entry"], task["view"],
                                task["optimize"], task["compiled"])
        if engine.fingerprint != task["fingerprint"]:
            raise TypeSignatureError(
                f"worker rebuilt database {task['name']!r} with "
                f"fingerprint {engine.fingerprint[:12]}…, coordinator "
                f"has {task['fingerprint'][:12]}…")
        shipped = task.get("budget")
        template = (Budget.from_shipped(shipped) if shipped is not None
                    else Budget(max_steps=task["budget_steps"]))
        engine.reset_stats()
        payload: dict = {"ok": True}
        if task["kind"] == "eval":
            verdicts, member_steps, member_calls = [], [], []
            with span("engine.shard_task", kind="eval",
                      members=len(task["plans"])) as sp:
                for text in task["plans"]:
                    plan = plan_from_json(json.loads(text))
                    member = template.fork()
                    try:
                        verdict = engine.eval(plan, budget=member)
                    except RepresentationError as exc:
                        # Exception parity with the sequential path:
                        # ship the failure, let the coordinator re-raise.
                        verdicts.append({"error": "representation",
                                         "detail": str(exc)})
                    else:
                        verdicts.append(verdict_to_json(verdict))
                    member_steps.append(member.steps)
                    member_calls.append(member.oracle_calls)
                sp.count("steps", sum(member_steps))
            payload.update(verdicts=verdicts, member_steps=member_steps,
                           member_oracle_calls=member_calls,
                           steps=sum(member_steps),
                           oracle_calls=sum(member_calls))
        else:  # kind == "contains"
            plan = plan_from_json(json.loads(task["plan"]))
            requests = [tuple(u) for u in task["tuples"]]
            run = template.fork()
            raised: dict | None = None
            answers: list = []
            with span("engine.shard_task", kind="contains",
                      members=len(requests)) as sp:
                try:
                    answers = engine.batch_contains(plan, requests,
                                                    budget=run)
                except OutOfFuel as exc:
                    raised = {"type": "OutOfFuel", "reason": exc.reason,
                              "steps": exc.steps, "detail": str(exc)}
                except RepresentationError as exc:
                    raised = {"type": "RepresentationError",
                              "detail": str(exc)}
                sp.count("steps", run.steps)
            payload.update(answers=[bool(a) for a in answers],
                           steps=run.steps,
                           oracle_calls=run.oracle_calls)
            if raised is not None:
                payload["raises"] = raised
        payload["stats"] = engine.stats().to_dict()
    if recorder is not None:
        payload["spans"] = [s.to_record(epoch)
                            for s in recorder.trace().ordered()]
    return payload


# -- the coordinator ----------------------------------------------------------

class ShardExecutor:
    """The coordinator: partition, ship, and merge batch work.

    Parameters
    ----------
    workers:
        Worker-process count (default: the CPU count).  ``workers <= 1``
        makes every method run in-process — the executor is then a
        zero-cost pass-through.
    budget_steps:
        The step allowance of one shipped batch member when no budget
        template is supplied (:data:`repro.trace.limits.SHARD_TASK`);
        entry points that own a budget (the engine, the serving tier)
        ship a :meth:`~repro.trace.Budget.ship` template instead.

    One executor serves any number of databases — tasks carry their
    spec, and worker processes cache engines per spec.  Thread-safe,
    like the :class:`WorkerPool` it wraps.  The pool starts lazily on
    first dispatch and is released by :meth:`close` (context manager
    supported); an executor also survives being reused across batches,
    which is what keeps worker caches warm.
    """

    def __init__(self, workers: int | None = None, *,
                 budget_steps: int = limits.SHARD_TASK):
        self.pool = WorkerPool(workers)
        self.workers = self.pool.workers
        self.budget_steps = budget_steps

    def close(self) -> None:
        """Release the worker processes (idempotent)."""
        self.pool.close()

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- dispatch helpers ----------------------------------------------------

    def _task(self, engine, spec: dict, *, kind: str,
              budget: Budget | None, trace: bool) -> dict:
        view = "fcf" if not engine.is_hs else "hs"
        return {
            "kind": kind,
            "name": spec["name"],
            "entry": json.dumps(spec["entry"], sort_keys=True),
            "view": view,
            "fingerprint": engine.fingerprint,
            "optimize": engine.optimize,
            "compiled": engine.compiled,
            "budget": budget.ship() if budget is not None else None,
            "budget_steps": self.budget_steps,
            "trace": trace,
        }

    @staticmethod
    def _join(future) -> dict:
        payload = future.result()
        if not payload.get("ok"):
            raise ShardTaskError(payload.get("error", "worker failed"))
        return payload

    @staticmethod
    def _absorb_worker(engine, payload: dict) -> None:
        """Fold one worker payload's stats into the coordinator engine."""
        from .stats import EngineStats
        engine._stats.absorb(EngineStats.from_dict(payload["stats"]))

    # -- eval batches --------------------------------------------------------

    def eval_batch(self, engine, plans, *, spec: dict | None = None,
                   budget: Budget | None = None,
                   member_budgets: list | None = None) -> list:
        """:meth:`Engine.eval` many plans across the worker pool.

        Members are partitioned by :func:`shard_index` over their
        canonical plan text; each shard ships one task, evaluates its
        members under worker-side forks of the shipped budget template
        (``budget`` or the engine budget), and the verdicts merge back
        **in request order**.  Members whose plans cannot serialize
        (:class:`~repro.engine.plan.MachineFixpoint`) are evaluated
        in-process while the shards run — the fallback costs only that
        member's parallelism, never the batch's.

        ``member_budgets`` (one coordinator :class:`Budget` per plan,
        the serving tier's per-member tenant forks) receives each
        member's consumed steps/oracle calls via
        :meth:`~repro.trace.Budget.absorb`, so quota accounting is
        exact across the process boundary.

        Raises :class:`UnshardableDatabaseError` when no spec can be
        derived (callers fall back to sequential evaluation) and
        :class:`ShardTaskError` when a worker fails outright.
        """
        from ..store.codec import (
            UnserializablePlanError,
            canonical_plan_text,
            verdict_from_json,
        )

        plans = list(plans)
        if member_budgets is not None and len(member_budgets) != len(plans):
            raise ValueError("member_budgets must match plans")
        spec = spec if spec is not None else derive_spec(engine.db)
        template = budget if budget is not None else engine.budget

        texts: list[str | None] = []
        local: list[int] = []
        for pos, plan in enumerate(plans):
            try:
                texts.append(canonical_plan_text(engine.prepare(plan)))
            except UnserializablePlanError:
                texts.append(None)
                local.append(pos)
        shardable = [pos for pos in range(len(plans))
                     if texts[pos] is not None]
        nshards = min(self.workers, len(shardable))
        if nshards <= 1:
            return engine.eval_batch(plans)

        shards: dict[int, list[int]] = {}
        for pos in shardable:
            shard = shard_index(engine.fingerprint, texts[pos], nshards)
            shards.setdefault(shard, []).append(pos)

        trace = active_recorder() is not None
        results: list = [None] * len(plans)
        with span("engine.shard_batch", size=len(plans),
                  workers=len(shards), local=len(local)) as sp:
            parent = current_span()
            dispatched = []
            base = time.monotonic()
            for positions in shards.values():
                shard_budget = template.fork()
                task = self._task(engine, spec, kind="eval",
                                  budget=shard_budget, trace=trace)
                task["plans"] = [texts[pos] for pos in positions]
                dispatched.append((positions, shard_budget,
                                   self.pool.submit(_worker_main, task)))
            # Unserializable members evaluate here while workers run.
            for pos in local:
                results[pos] = engine.eval(plans[pos])
            failed: dict | None = None
            for positions, shard_budget, future in dispatched:
                payload = self._join(future)
                shard_budget.absorb(steps=payload["steps"],
                                    oracle_calls=payload["oracle_calls"])
                self._absorb_worker(engine, payload)
                if trace and payload.get("spans"):
                    replay_records(payload["spans"], parent,
                                   base_start=base)
                sp.count("steps", payload["steps"])
                rows = zip(positions, payload["verdicts"],
                           payload["member_steps"],
                           payload["member_oracle_calls"])
                for pos, verdict, steps, calls in rows:
                    if member_budgets is not None:
                        member_budgets[pos].absorb(steps=steps,
                                                   oracle_calls=calls)
                    if isinstance(verdict, dict) and "error" in verdict:
                        # Exception parity with Engine.eval_batch: a
                        # RepresentationError propagates (after every
                        # shard joins, so accounting stays exact).
                        failed = failed or verdict
                        continue
                    results[pos] = verdict_from_json(verdict)
            if failed is not None:
                raise RepresentationError(failed["detail"])
        return results

    # -- membership batches --------------------------------------------------

    def batch_contains(self, engine, plan, tuples, *,
                       spec: dict | None = None,
                       budget: Budget | None = None) -> list:
        """Answer many membership questions across the worker pool.

        The process-pool twin of the engine's thread path: the
        coordinator probes its result cache first (warm answers never
        ship), partitions the misses by :func:`shard_index` over
        ``(plan text, tuple)``, and each worker evaluates the plan once
        (its private cache keeps it warm across batches) and answers
        its tuples sequentially.  Answers merge in request order and
        are written back into the coordinator's result cache under the
        same keys the sequential path uses — so a sharded batch warms
        the cache for everyone, bit for bit.

        ``budget`` is the batch budget (default: a fork of the engine
        budget); every shard runs under its own worker-side fork of it
        and the consumed counters are re-aggregated exactly at the
        join.  Raises :class:`UnshardableDatabaseError` /
        :class:`~repro.store.codec.UnserializablePlanError` for the
        callers' in-process fallback.
        """
        from ..store.codec import canonical_plan_text
        from .cache import ResultCache

        requests = [tuple(u) for u in tuples]
        spec = spec if spec is not None else derive_spec(engine.db)
        prepared = engine.prepare(plan)
        text = canonical_plan_text(prepared)
        run = budget if budget is not None else engine.budget.fork()

        answers: list = [None] * len(requests)
        pending: list[int] = []
        results_cache = engine.cache.results
        missing = object()
        for pos, u in enumerate(requests):
            key = ResultCache.key(engine.fingerprint, prepared,
                                  ("contains", u))
            hit = results_cache.get(key, missing)
            if hit is missing:
                pending.append(pos)
            else:
                answers[pos] = hit

        nshards = min(self.workers, len(pending))
        if nshards <= 1:
            return engine.batch_contains(plan, requests, budget=run)

        shards: dict[int, list[int]] = {}
        for pos in pending:
            shard = shard_index(engine.fingerprint,
                                f"{text}\x1f{requests[pos]!r}", nshards)
            shards.setdefault(shard, []).append(pos)

        trace = active_recorder() is not None
        with span("engine.batch_contains", requests=len(requests),
                  workers=len(shards)) as sp:
            parent = current_span()
            dispatched = []
            base = time.monotonic()
            for positions in shards.values():
                task = self._task(engine, spec, kind="contains",
                                  budget=run, trace=trace)
                task["plan"] = text
                task["tuples"] = [list(requests[pos])
                                  for pos in positions]
                dispatched.append((positions,
                                   self.pool.submit(_worker_main, task)))
            raised: dict | None = None
            for positions, future in dispatched:
                payload = self._join(future)
                run.absorb(steps=payload["steps"],
                           oracle_calls=payload["oracle_calls"])
                self._absorb_worker(engine, payload)
                if trace and payload.get("spans"):
                    replay_records(payload["spans"], parent,
                                   base_start=base)
                sp.count("steps", payload["steps"])
                if payload.get("raises") is not None:
                    raised = raised or payload["raises"]
                    continue
                for pos, answer in zip(positions, payload["answers"]):
                    answers[pos] = answer
                    key = ResultCache.key(engine.fingerprint, prepared,
                                          ("contains", requests[pos]))
                    results_cache.put(key, answer)
            if raised is not None:
                # Exception parity with the sequential path (after
                # every shard joins, so accounting stays exact).
                if raised["type"] == "OutOfFuel":
                    raise OutOfFuel(raised["detail"],
                                    steps=raised["steps"],
                                    reason=raised["reason"])
                raise RepresentationError(raised["detail"])
        return answers
