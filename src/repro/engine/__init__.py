"""``repro.engine`` — the unified query-evaluation engine.

One evaluation surface for all four query frontends (L⁻/FO, QLhs, QLf+,
GMhs), built from:

* :mod:`repro.engine.plan` — the plan IR
  (scan/filter/project/quantify/join/fixpoint + boolean combinators)
  and its normalizer;
* :mod:`repro.engine.frontends` — thin adapters lowering each source
  language into the IR, reusing the existing compilers;
* :mod:`repro.engine.fingerprint` — structural database fingerprints,
  the key that makes cached results safely reusable across database
  copies (genericity, Definition 2.4, is the soundness argument);
* :mod:`repro.engine.cache` — the two-level (plan, result) cache;
* :mod:`repro.engine.optimize` — the rule-based plan optimizer
  (complement pushdown, projection fusion, constant folding via
  genericity; ``docs/optimizer.md``), on by default in
  :meth:`Engine.prepare`;
* :mod:`repro.engine.compile` — the compiled-closure execution
  backend, on by default for cold evaluations;
* :mod:`repro.engine.executor` — :class:`Engine`: cached evaluation,
  batched membership with an optional parallel path, metered end to
  end and governed by a :class:`~repro.trace.Budget`;
* :mod:`repro.engine.verdict` — :class:`Verdict`, the three-valued
  answer type of :meth:`Engine.eval`: divergence (a tripped budget)
  becomes ``UNKNOWN`` with a machine-readable reason instead of a
  leaked :class:`~repro.errors.OutOfFuel`;
* :mod:`repro.engine.stats` — :class:`EngineStats` snapshots
  (oracle questions, cache traffic, per-node timings, wall time,
  verdict counts);
* :mod:`repro.engine.shard` — the multi-process sharded executor
  (:class:`ShardExecutor` / the shared :class:`WorkerPool`): batch
  work partitioned by fingerprint shard across worker processes, with
  ordered merge and exact budget/stats/span re-aggregation at the
  join (``docs/sharding.md``); reached through
  ``Engine.eval_batch(workers=N)`` /
  ``Engine.batch_contains(workers=N)``.

Quick use::

    from repro.engine import Engine, plan_from_sentence
    from repro.logic import parse
    from repro.symmetric import rado_hsdb

    db = rado_hsdb()
    engine = Engine(db)
    plan = plan_from_sentence(parse("forall x. exists y. R1(x, y)"),
                              db.signature)
    engine.holds(plan)        # cold: evaluates; warm: a cache probe
    print(engine.stats().format())
"""

from .cache import EngineCache, PlanCache, ResultCache
from .compile import CompiledPlan, compile_plan
from .executor import Engine
from .fingerprint import (
    fingerprint,
    fingerprint_fcf,
    fingerprint_hsdb,
    fingerprint_rdb,
)
from .frontends import (
    FCF_ROUTES,
    HS_ROUTES,
    lower_all,
    plan_from_formula,
    plan_from_gmhs,
    plan_from_qlf,
    plan_from_qlhs,
    plan_from_sentence,
    plan_from_term,
    procedure_from_formula,
    term_rank,
)
from .optimize import (
    RULE_NAMES,
    RULES,
    OptimizeResult,
    common_subplans,
    optimize,
    optimize_result,
)
from .plan import (
    EXISTS,
    FORALL,
    Complement,
    Empty,
    Extend,
    FcfFixpoint,
    FilterAtom,
    FilterEq,
    Fixpoint,
    FullScan,
    Intersect,
    Join,
    MachineFixpoint,
    Plan,
    Project,
    Quantify,
    Scan,
    Union,
    normalize,
    plan_rank,
    plan_size,
)
from .shard import (
    ShardExecutor,
    ShardTaskError,
    UnshardableDatabaseError,
    WorkerPool,
    derive_spec,
    shard_index,
)
from .stats import CacheStats, EngineStats, MutableEngineStats, OptimizerStats
from .verdict import FALSE, TRUE, UNKNOWN, Verdict, merge_verdicts

__all__ = [
    "EXISTS",
    "FALSE",
    "FCF_ROUTES",
    "FORALL",
    "HS_ROUTES",
    "RULES",
    "RULE_NAMES",
    "TRUE",
    "UNKNOWN",
    "CacheStats",
    "Complement",
    "CompiledPlan",
    "Empty",
    "Engine",
    "EngineCache",
    "EngineStats",
    "Extend",
    "FcfFixpoint",
    "FilterAtom",
    "FilterEq",
    "Fixpoint",
    "FullScan",
    "Intersect",
    "Join",
    "MachineFixpoint",
    "MutableEngineStats",
    "OptimizeResult",
    "OptimizerStats",
    "Plan",
    "PlanCache",
    "Project",
    "Quantify",
    "ResultCache",
    "Scan",
    "ShardExecutor",
    "ShardTaskError",
    "Union",
    "UnshardableDatabaseError",
    "Verdict",
    "WorkerPool",
    "common_subplans",
    "compile_plan",
    "derive_spec",
    "fingerprint",
    "fingerprint_fcf",
    "fingerprint_hsdb",
    "fingerprint_rdb",
    "lower_all",
    "merge_verdicts",
    "normalize",
    "optimize",
    "optimize_result",
    "plan_from_formula",
    "plan_from_gmhs",
    "plan_from_qlf",
    "plan_from_qlhs",
    "plan_from_sentence",
    "plan_from_term",
    "plan_rank",
    "plan_size",
    "procedure_from_formula",
    "shard_index",
    "term_rank",
]
