"""Thin adapters lowering each query frontend into the plan IR.

The library grew four independent evaluation routes — the relativized FO
evaluator (Theorem 6.3), the QLhs interpreter (§3.3), QLf+ (Section 4),
and the GMhs pipeline (Theorem 5.1).  These adapters make the engine the
single entry point for all of them *without duplicating any compiler*:

* **L⁻ / FO** — :func:`plan_from_formula` reuses the existing
  calculus→algebra compiler :func:`repro.qlhs.from_logic.compile_formula`
  (itself exercised by the Theorem 6.3 test triangle) and then maps the
  resulting QLhs *term* — a pure, loop-free algebra — node-for-node into
  plan nodes via :func:`plan_from_term`;
* **QLhs** — :func:`plan_from_qlhs`: terms lower structurally; full
  programs (which carry ``while`` loops and a store) become a single
  :class:`~repro.engine.plan.Fixpoint` node, executed by the existing
  interpreter;
* **QLf+** — :func:`plan_from_qlf` wraps the program in an
  :class:`~repro.engine.plan.FcfFixpoint` node for engines over
  :class:`~repro.fcf.database.FcfDatabase`;
* **GMhs** — :func:`plan_from_gmhs` wraps a Theorem 5.1 query procedure
  in a :class:`~repro.engine.plan.MachineFixpoint` node, executed by
  :func:`repro.machines.gmhs_pipeline.run_query_gmhs`.

Because a loop-free QLhs *term* and its plan are structurally isomorphic
algebras, the equivalence tests can state "engine = direct evaluator"
relation-for-relation on the whole existing corpus.

The lowering here is deliberately **naive**: it mirrors the source
compilers exactly, projection tower for projection tower, so that its
correctness argument stays a structural induction against the paper's
own translations.  Making the output *fast* — collapsing the towers
into quantifier chains, grounding joins, folding constants — is
entirely the job of :mod:`repro.engine.optimize`, which
:meth:`Engine.prepare` runs over these plans by default.  Keep it that
way: an "optimization" added here would be invisible to the optimizer's
property battery and golden snapshots.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..errors import RankMismatchError, TypeSignatureError
from ..logic.syntax import Formula, Var
from ..qlhs import ast as q
from ..qlhs.from_logic import compile_formula
from ..trace import limits
from .plan import (
    Complement,
    Extend,
    FcfFixpoint,
    FilterEq,
    Fixpoint,
    FullScan,
    Intersect,
    Join,
    MachineFixpoint,
    Plan,
    Project,
    Scan,
)


# ---------------------------------------------------------------------------
# QLhs terms → plans (the shared lowering everything else reuses).
# ---------------------------------------------------------------------------

def term_rank(term: q.Term, signature: Sequence[int]) -> int:
    """Static rank of a loop-free, store-free QLhs term."""
    signature = tuple(signature)
    if isinstance(term, q.E):
        return 2
    if isinstance(term, q.Rel):
        if not 0 <= term.index < len(signature):
            raise TypeSignatureError(
                f"Rel{term.index + 1} out of range for type {signature}")
        return signature[term.index]
    if isinstance(term, q.VarT):
        raise TypeSignatureError(
            f"term variable {term.name!r} has no static rank; lower the "
            "whole program with plan_from_qlhs instead")
    if isinstance(term, q.Inter):
        left = term_rank(term.left, signature)
        right = term_rank(term.right, signature)
        if left != right:
            raise RankMismatchError(f"∩ of ranks {left} and {right}")
        return left
    if isinstance(term, q.Comp):
        return term_rank(term.body, signature)
    if isinstance(term, q.Up):
        return term_rank(term.body, signature) + 1
    if isinstance(term, q.Down):
        return max(term_rank(term.body, signature) - 1, 0)
    if isinstance(term, q.Swap):
        rank = term_rank(term.body, signature)
        if rank < 2:
            raise RankMismatchError("~ requires rank >= 2")
        return rank
    if isinstance(term, q.Product):
        return (term_rank(term.left, signature)
                + term_rank(term.right, signature))
    if isinstance(term, q.Permute):
        return len(term.perm)
    if isinstance(term, q.SelectEq):
        return term_rank(term.body, signature)
    raise TypeError(f"unknown term {term!r}")


def plan_from_term(term: q.Term, signature: Sequence[int]) -> Plan:
    """Lower a loop-free QLhs term into the plan IR, node for node.

    The mapping mirrors the interpreter's semantics exactly — including
    the documented rank-0 ``↓`` deviation (lowered to the provably empty
    ``¬T⁰``) — so engine execution and direct interpretation coincide.
    """
    signature = tuple(signature)
    if isinstance(term, q.E):
        return FilterEq(FullScan(2), 0, 1)
    if isinstance(term, q.Rel):
        term_rank(term, signature)  # range check
        return Scan(term.index)
    if isinstance(term, q.Inter):
        left = plan_from_term(term.left, signature)
        right = plan_from_term(term.right, signature)
        term_rank(term, signature)  # rank check
        return Intersect((left, right))
    if isinstance(term, q.Comp):
        return Complement(plan_from_term(term.body, signature))
    if isinstance(term, q.Up):
        return Extend(plan_from_term(term.body, signature))
    if isinstance(term, q.Down):
        n = term_rank(term.body, signature)
        if n == 0:
            # The interpreter's documented deviation: ↓ on rank 0 is the
            # empty rank-0 value — here ``T⁰ − T⁰``.
            return Complement(FullScan(0))
        return Project(plan_from_term(term.body, signature),
                       tuple(range(1, n)))
    if isinstance(term, q.Swap):
        n = term_rank(term.body, signature)
        if n < 2:
            raise RankMismatchError("~ requires rank >= 2")
        coords = tuple(range(n - 2)) + (n - 1, n - 2)
        return Project(plan_from_term(term.body, signature), coords)
    if isinstance(term, q.Product):
        return Join(plan_from_term(term.left, signature),
                    plan_from_term(term.right, signature))
    if isinstance(term, q.Permute):
        n = term_rank(term.body, signature)
        if len(term.perm) != n:
            raise RankMismatchError(
                f"permutation of length {len(term.perm)} applied to "
                f"rank-{n} term")
        return Project(plan_from_term(term.body, signature), term.perm)
    if isinstance(term, q.SelectEq):
        return FilterEq(plan_from_term(term.body, signature),
                        term.i, term.j)
    if isinstance(term, q.VarT):
        raise TypeSignatureError(
            f"term variable {term.name!r} cannot lower structurally; "
            "lower the whole program with plan_from_qlhs instead")
    raise TypeError(f"unknown term {term!r}")


# ---------------------------------------------------------------------------
# Frontend 1: L⁻ / FO formulas.
# ---------------------------------------------------------------------------

def plan_from_formula(formula: Formula, variables: Sequence[Var],
                      signature: Sequence[int]) -> Plan:
    """Lower an FO (or quantifier-free L⁻) formula into a plan.

    ``variables`` fixes the free-variable → coordinate order, exactly as
    in :func:`repro.qlhs.from_logic.compile_formula` (which performs the
    actual compilation; this adapter only changes the target algebra).
    A sentence (``variables = []``) lowers to a rank-0 plan whose
    nonemptiness is its truth value.
    """
    term = compile_formula(formula, list(variables), tuple(signature))
    return plan_from_term(term, signature)


def plan_from_sentence(sentence: Formula,
                       signature: Sequence[int]) -> Plan:
    """A sentence as a rank-0 plan (truth = nonemptiness)."""
    return plan_from_formula(sentence, [], signature)


# ---------------------------------------------------------------------------
# Frontend 2: QLhs programs (and bare terms).
# ---------------------------------------------------------------------------

def plan_from_qlhs(program: q.Program | q.Term,
                   result_var: str = "Y1",
                   signature: Sequence[int] | None = None) -> Plan:
    """Lower QLhs into the IR.

    Bare loop-free terms lower structurally (full algebraic caching and
    normalization apply); programs — which may loop — become one
    :class:`~repro.engine.plan.Fixpoint` node whose payload is the
    (hashable) program AST, so repeated executions still hit the result
    cache.
    """
    if isinstance(program, q.Term):
        if signature is None:
            raise TypeSignatureError(
                "lowering a bare term needs the database type signature")
        return plan_from_term(program, signature)
    return Fixpoint(program, result_var)


# ---------------------------------------------------------------------------
# Frontend 3: QLf+ programs over fcf databases.
# ---------------------------------------------------------------------------

def plan_from_qlf(program: q.Program) -> Plan:
    """Lower a QLf+ program (Section 4 semantics) into the IR."""
    return FcfFixpoint(program)


# ---------------------------------------------------------------------------
# FO formulas as GMhs query procedures (the Theorem 5.1 bridge).
# ---------------------------------------------------------------------------

def procedure_from_formula(formula: Formula,
                           variables: Sequence[Var] = ()):
    """An FO formula as a Theorem 5.1 query procedure.

    The returned procedure speaks only the :class:`~repro.qlhs.
    completeness.ModelOracle` protocol — ``atom`` / ``equiv`` /
    ``children`` questions over positions of the encoding tuple ``d`` —
    so it runs under both completeness pipelines (QLhs and GMhs) and
    under :class:`~repro.engine.plan.MachineFixpoint` plans.  The
    semantics is the Theorem 6.3 relativization: quantifiers range over
    the oracle's ``children`` (one position per extension class), and
    equality of two positions is decided by the ``≅`` question
    ``(a, b) ≅ (a, a)`` (equivalent tuples share their equality
    pattern, so the answer is exactly ``d[a] = d[b]``).

    ``variables`` fixes the free-variable → coordinate order; a
    sentence (the default) yields ``{()}`` when it holds, ``set()``
    otherwise.
    """
    from ..logic.syntax import (
        And, Eq, Exists, FalseF, Forall, Implies, Not, Or, RelAtom, TrueF,
    )
    variables = tuple(variables)

    def positions_equal(oracle, a: int, b: int) -> bool:
        if a == b:
            return True
        return oracle.equiv((a, b), (a, a))

    def holds(oracle, f: Formula, env: tuple[int, ...], slots) -> bool:
        if isinstance(f, TrueF):
            return True
        if isinstance(f, FalseF):
            return False
        if isinstance(f, Eq):
            return positions_equal(oracle, env[slots[f.left]],
                                   env[slots[f.right]])
        if isinstance(f, RelAtom):
            return oracle.atom(f.index,
                               tuple(env[slots[a]] for a in f.args))
        if isinstance(f, Not):
            return not holds(oracle, f.body, env, slots)
        if isinstance(f, And):
            return all(holds(oracle, c, env, slots) for c in f.children)
        if isinstance(f, Or):
            return any(holds(oracle, c, env, slots) for c in f.children)
        if isinstance(f, Implies):
            return (not holds(oracle, f.left, env, slots)
                    or holds(oracle, f.right, env, slots))
        if isinstance(f, (Exists, Forall)):
            slots = dict(slots)
            slots[f.var] = len(env)
            branches = (holds(oracle, f.body, env + (c,), slots)
                        for c in oracle.children(env))
            return any(branches) if isinstance(f, Exists) else all(branches)
        raise TypeError(f"unknown formula {f!r}")

    def procedure(oracle) -> set:
        slots = {v: i for i, v in enumerate(variables)}
        frontier: list[tuple[int, ...]] = [()]
        for __ in variables:
            frontier = [env + (c,) for env in frontier
                        for c in oracle.children(env)]
        return {env for env in frontier
                if holds(oracle, formula, env, slots)}

    return procedure


# ---------------------------------------------------------------------------
# Frontend 4: GMhs query procedures.
# ---------------------------------------------------------------------------

def plan_from_gmhs(procedure, search_window: int = 512,
                   fuel: int | None = None, *,
                   max_steps: int | None = None) -> Plan:
    """Lower a Theorem 5.1 query procedure into the IR.

    The procedure is the same :data:`~repro.qlhs.completeness.
    QueryProcedure` convention both completeness pipelines consume.
    ``max_steps`` caps the GMhs loading stage (default
    :data:`repro.trace.limits.MACHINE_FIXPOINT`); ``fuel`` is its
    deprecated alias.
    """
    if max_steps is None:
        max_steps = fuel if fuel is not None else limits.MACHINE_FIXPOINT
    return MachineFixpoint(procedure, search_window=search_window,
                           max_steps=max_steps)


# ---------------------------------------------------------------------------
# lower_all: one semantic query through every applicable frontend.
# ---------------------------------------------------------------------------

#: Route names produced by :func:`lower_all`, in emission order.
ROUTE_FO = "fo"                # structural algebra plan (Theorem 6.3 route)
ROUTE_QLHS = "qlhs"            # Fixpoint plan run by the QLhs interpreter
ROUTE_GMHS = "gmhs"            # MachineFixpoint plan (Theorem 5.1 route)
ROUTE_QLF = "qlf"              # FcfFixpoint plan (Section 4 route)

#: Routes whose plans execute on an Engine over an ``HSDatabase``.
HS_ROUTES = (ROUTE_FO, ROUTE_QLHS, ROUTE_GMHS)
#: Routes whose plans execute on an Engine over an ``FcfDatabase``.
FCF_ROUTES = (ROUTE_QLF,)


def lower_all(query, signature: Sequence[int], *,
              variables: Sequence[Var] = (),
              include_gmhs: bool = False,
              include_qlf: bool = False) -> dict[str, Plan]:
    """Lower one semantic query through **every applicable frontend**.

    This is the differential-testing hook (:mod:`repro.check`): the
    paper's completeness theorems are equivalence claims between the
    frontends, so the same query lowered along every route must yield
    :meth:`agreeing <repro.engine.verdict.Verdict.agrees>` verdicts.

    ``query`` may be an FO :class:`~repro.logic.syntax.Formula`
    (``variables`` fixes the free-variable order), a QLhs
    :class:`~repro.qlhs.ast.Term`, or a QLhs
    :class:`~repro.qlhs.ast.Program`.  The result maps route name →
    plan:

    * ``"fo"`` — the structural algebra plan (pure plan-IR execution);
    * ``"qlhs"`` — a :class:`~repro.engine.plan.Fixpoint` plan whose
      payload is a one-assignment program, executed by the QLhs
      *interpreter* (a genuinely different execution path);
    * ``"gmhs"`` (``include_gmhs=True``, formulas only) — a
      :class:`~repro.engine.plan.MachineFixpoint` plan wrapping
      :func:`procedure_from_formula` (the Theorem 5.1 pipeline);
    * ``"qlf"`` (``include_qlf=True``, intrinsic-free terms/programs
      only) — an :class:`~repro.engine.plan.FcfFixpoint` plan for an
      Engine over the corresponding
      :class:`~repro.fcf.database.FcfDatabase`.

    Plans in :data:`HS_ROUTES` execute on an Engine over an
    :class:`~repro.symmetric.hsdb.HSDatabase`; plans in
    :data:`FCF_ROUTES` need an Engine over the fcf view of the *same*
    database (Proposition 4.1's bridge).
    """
    from ..logic.syntax import Formula as _Formula
    plans: dict[str, Plan] = {}
    if isinstance(query, _Formula):
        term = compile_formula(query, list(variables), tuple(signature))
        plans[ROUTE_FO] = plan_from_term(term, signature)
        plans[ROUTE_QLHS] = Fixpoint(q.Assign("Y1", term), "Y1")
        if include_gmhs:
            plans[ROUTE_GMHS] = plan_from_gmhs(
                procedure_from_formula(query, variables))
        return plans
    if isinstance(query, q.Term):
        plans[ROUTE_FO] = plan_from_term(query, signature)
        program: q.Program = q.Assign("Y1", query)
        plans[ROUTE_QLHS] = Fixpoint(program, "Y1")
        if include_qlf and not q.term_uses_intrinsics(query):
            plans[ROUTE_QLF] = FcfFixpoint(program)
        return plans
    if isinstance(query, q.Program):
        plans[ROUTE_QLHS] = Fixpoint(query, "Y1")
        if include_qlf and not q.program_uses_intrinsics(query):
            plans[ROUTE_QLF] = FcfFixpoint(query)
        return plans
    raise TypeSignatureError(
        f"lower_all cannot lower {type(query).__name__} queries")
