"""The rule-based plan optimizer.

Profiling the cold path (EXPERIMENTS E15/E20) shows evaluation cost is
dominated not by interpreter dispatch but by *canonicalization*: every
:class:`~repro.engine.plan.Project` node folds each projected tuple
back onto the characteristic tree via oracle (``≅_B``) questions, and
the frontends lower quantifiers into towers of projections.  The
optimizer is therefore aimed squarely at eliminating canonicalizing
nodes, with classic algebraic folding riding along:

* **projection fusion and prefix elimination** — adjacent projections
  compose (genericity makes ``canon(canon(t·c₁)·c₂) = canon(t·c₁·c₂)``
  exact, Definition 2.4), and a prefix projection ``(0..m−1)`` over a
  rank-``n`` child is exactly an ``∃``-chain of length ``n−m``
  (dropping the last label of a path needs *zero* oracle questions);
* **selection reordering and pushdown** — coordinate-equality filters
  sink below projections (the equality pattern is ``≅_B``-invariant)
  and inside filter chains run before oracle-backed atom filters;
* **complement pushdown** — De Morgan through unions/intersections and
  the two quantifier dualities ``∁∃ = ∀∁`` / ``∁∀ = ∃∁`` (both exact
  because quantification relativizes to the tree, Theorem 6.3);
* **empty/universal folding** — :class:`~repro.engine.plan.Empty` and
  :class:`~repro.engine.plan.FullScan` constants propagate
  (``X ∩ ∁X → ∅``, ``∀Tⁿ⁺¹ → Tⁿ``, …); soundness again leans on
  genericity: a statically empty/universal union of classes stays so
  under every generic operation;
* **join grounding** — a join whose operand is an Extend-tower over a
  rank-0 core is a *guarded* join: ``Join(↑ᵏx₀, B) =
  Join(x₀, Join(Tᵏ, B))``, which the executor (and especially the
  compiled backend, :mod:`repro.engine.compile`) evaluates without
  canonicalizing the tower.

Every rule fires only at nodes whose static rank is known and valid
(:func:`~repro.engine.plan.plan_rank` succeeds), so the optimizer never
rewrites around an opaque fixpoint and never changes the error
behaviour of an ill-ranked plan.  Rules that are **not** sound without
nonemptiness assumptions (``∃Tⁿ⁺¹ → Tⁿ``, ``∃↑c → c``) are deliberately
absent: a path may lack tree children.

:func:`optimize` runs whole-tree passes to a fixpoint (capped by
:data:`repro.trace.limits.OPTIMIZER_PASSES`), interleaved with
:func:`~repro.engine.plan.normalize`, and is idempotent —
``optimize(optimize(p)) == optimize(p)`` — which the property-test
battery (``tests/test_engine/test_optimize_properties.py``) checks on
generated plans, along with per-rule semantic preservation.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from ..errors import RankMismatchError, TypeSignatureError
from ..trace import limits
from .plan import (
    EXISTS,
    FORALL,
    Complement,
    Empty,
    Extend,
    FcfFixpoint,
    FilterAtom,
    FilterEq,
    Fixpoint,
    FullScan,
    Intersect,
    Join,
    MachineFixpoint,
    Plan,
    Project,
    Quantify,
    Scan,
    Union,
    normalize,
    plan_rank,
)

#: Nodes with no children (rewritten only through their parents).
LEAVES = (Scan, FullScan, Empty, Fixpoint, MachineFixpoint, FcfFixpoint)

#: Local rule applications per node per pass — a safety valve, far
#: above what any terminating rule sequence needs.
_NODE_ITERATIONS = 64

_UNSET = object()


class _Ranker:
    """Memoized static rank: an ``int``, or ``None`` when the rank is
    unknown (dynamic fixpoint below, missing signature) or the node is
    statically ill-ranked — either way, rules must not fire.

    The memo is keyed by object identity, not plan equality: plan
    hashing is recursive (``O(subtree)`` per lookup), which profiling
    showed dominating whole optimization passes.  Entries keep a
    reference to their plan so the id cannot be recycled underneath
    the memo; a ranker lives only for one :func:`optimize_result`
    call, bounding the retained garbage to that plan's rewrite
    history."""

    __slots__ = ("_signature", "_memo")

    def __init__(self, signature: Sequence[int] | None):
        self._signature = tuple(signature) if signature is not None else ()
        self._memo: dict[int, tuple[Plan, int | None]] = {}

    def __call__(self, plan: Plan) -> int | None:
        entry = self._memo.get(id(plan))
        if entry is not None and entry[0] is plan:
            return entry[1]
        try:
            rank = plan_rank(plan, self._signature)
        except (RankMismatchError, TypeSignatureError, TypeError):
            rank = None
        self._memo[id(plan)] = (plan, rank)
        return rank


def _resolve(i: int, n: int) -> int:
    """A possibly-negative coordinate index, resolved against rank ``n``."""
    return i if i >= 0 else n + i


def _peel_extends(plan: Plan) -> tuple[int, Plan]:
    """Strip ``Extend`` wrappers: ``(k, core)`` with ``plan = ↑ᵏ core``."""
    k = 0
    while isinstance(plan, Extend):
        plan = plan.child
        k += 1
    return k, plan


def _peel_filters(plan: Plan) -> tuple[list[Plan], Plan]:
    """Strip a filter chain (outermost first): ``(chain, base)``."""
    chain: list[Plan] = []
    while isinstance(plan, (FilterEq, FilterAtom)):
        chain.append(plan)
        plan = plan.child
    return chain, plan


def _refilter(spec: Plan, child: Plan) -> Plan:
    """``spec`` (a filter node) re-rooted over ``child``."""
    if isinstance(spec, FilterEq):
        return FilterEq(child, spec.i, spec.j)
    return FilterAtom(child, spec.index, spec.positions, spec.negate)


# ---------------------------------------------------------------------------
# The rewrite rules.  Each takes (node, rank) — ``rank`` the memoized
# static ranker — and returns a semantically equal replacement or None.
# The driver only calls a rule when ``rank(node)`` is a valid int.
# ---------------------------------------------------------------------------

def _rw_complement_complement(node: Complement, rank) -> Plan | None:
    """``∁∁x → x`` (complement is an involution within a rank)."""
    if isinstance(node.child, Complement):
        return node.child.child
    return None


def _rw_complement_empty(node: Complement, rank) -> Plan | None:
    """``∁∅ → Tⁿ``."""
    if isinstance(node.child, Empty):
        return FullScan(node.child.rank)
    return None


def _rw_complement_full(node: Complement, rank) -> Plan | None:
    """``∁Tⁿ → ∅``."""
    if isinstance(node.child, FullScan):
        return Empty(node.child.rank)
    return None


def _rw_complement_union(node: Complement, rank) -> Plan | None:
    """De Morgan: ``∁(a ∪ b) → ∁a ∩ ∁b`` (complements sink)."""
    if isinstance(node.child, Union):
        return Intersect(tuple(Complement(c) for c in node.child.children))
    return None


def _rw_complement_intersect(node: Complement, rank) -> Plan | None:
    """De Morgan: ``∁(a ∩ b) → ∁a ∪ ∁b``."""
    if isinstance(node.child, Intersect):
        return Union(tuple(Complement(c) for c in node.child.children))
    return None


def _rw_complement_quantify(node: Complement, rank) -> Plan | None:
    """``∁∃c → ∀∁c`` and ``∁∀c → ∃∁c`` — exact even at childless
    paths (vacuous ``∀`` matches absent ``∃`` on both sides)."""
    if isinstance(node.child, Quantify):
        dual = FORALL if node.child.kind == EXISTS else EXISTS
        return Quantify(Complement(node.child.child), dual)
    return None


def _rw_filter_eq_resolve(node: FilterEq, rank) -> Plan | None:
    """Canonicalize ``FilterEq`` indices: non-negative, sorted."""
    n = rank(node.child)
    if n is None:
        return None
    i, j = _resolve(node.i, n), _resolve(node.j, n)
    lo, hi = (i, j) if i <= j else (j, i)
    if (lo, hi) != (node.i, node.j):
        return FilterEq(node.child, lo, hi)
    return None


def _rw_filter_eq_trivial(node: FilterEq, rank) -> Plan | None:
    """``σ_{i=i}(c) → c``."""
    n = rank(node.child)
    if n is not None and _resolve(node.i, n) == _resolve(node.j, n):
        return node.child
    return None


def _rw_filter_eq_order(node: FilterEq, rank) -> Plan | None:
    """Sort (and deduplicate) adjacent equality filters into a
    canonical inner-smallest order — enables sharing and dedup."""
    inner = node.child
    if not isinstance(inner, FilterEq):
        return None
    n = rank(inner.child)
    if n is None:
        return None
    outer_key = tuple(sorted((_resolve(node.i, n), _resolve(node.j, n))))
    inner_key = tuple(sorted((_resolve(inner.i, n), _resolve(inner.j, n))))
    if outer_key == inner_key:
        return inner
    if outer_key < inner_key:
        return FilterEq(FilterEq(inner.child, *outer_key), *inner_key)
    return None


def _rw_filter_eq_atom(node: FilterEq, rank) -> Plan | None:
    """Run the free equality test before the oracle-backed atom test:
    ``σ_{i=j}(σ_R(c)) → σ_R(σ_{i=j}(c))``."""
    if isinstance(node.child, FilterAtom):
        atom = node.child
        return FilterAtom(FilterEq(atom.child, node.i, node.j),
                          atom.index, atom.positions, atom.negate)
    return None


def _rw_filter_eq_project(node: FilterEq, rank) -> Plan | None:
    """Push an equality filter below a projection.  Sound because
    canonicalization preserves the equality pattern of a tuple
    (``≅_B`` refines it), so filtering projected representatives
    equals projecting filtered source paths."""
    if not isinstance(node.child, Project):
        return None
    coords = node.child.coords
    m = len(coords)
    a = coords[_resolve(node.i, m)]
    b = coords[_resolve(node.j, m)]
    lo, hi = (a, b) if a <= b else (b, a)
    return Project(FilterEq(node.child.child, lo, hi), coords)


def _rw_filter_empty(node: Plan, rank) -> Plan | None:
    """A filter over ``∅`` is ``∅``."""
    if isinstance(node.child, Empty):
        return node.child
    return None


def _rw_project_project(node: Project, rank) -> Plan | None:
    """Fuse adjacent projections: ``π_outer(π_inner(c)) →
    π_{inner∘outer}(c)`` — one canonicalization layer instead of two
    (coordinate selection preserves ``≅_B`` classes)."""
    if isinstance(node.child, Project):
        inner = node.child.coords
        return Project(node.child.child,
                       tuple(inner[c] for c in node.coords))
    return None


def _rw_project_identity(node: Project, rank) -> Plan | None:
    """``π_{0..n−1}(c) → c``."""
    n = rank(node.child)
    if n is not None and node.coords == tuple(range(n)):
        return node.child
    return None


def _rw_project_prefix(node: Project, rank) -> Plan | None:
    """A prefix projection is an ``∃``-chain: for canonical paths,
    ``π_{0..m−1}(p) = p[:m]``, so each dropped trailing coordinate is
    one relativized ``∃`` — and needs zero canonicalization."""
    n = rank(node.child)
    if n is None:
        return None
    m = len(node.coords)
    if m < n and node.coords == tuple(range(m)):
        out = node.child
        for __ in range(n - m):
            out = Quantify(out, EXISTS)
        return out
    return None


def _rw_project_empty(node: Project, rank) -> Plan | None:
    """``π(∅) → ∅`` at the projected rank."""
    if isinstance(node.child, Empty):
        return Empty(len(node.coords))
    return None


def _rw_extend_empty(node: Extend, rank) -> Plan | None:
    """``↑∅ → ∅``."""
    if isinstance(node.child, Empty):
        return Empty(node.child.rank + 1)
    return None


def _rw_extend_full(node: Extend, rank) -> Plan | None:
    """``↑Tⁿ → Tⁿ⁺¹`` — extending every level path by every tree child
    is exactly the next level."""
    if isinstance(node.child, FullScan):
        return FullScan(node.child.rank + 1)
    return None


def _rw_quantify_exists_empty(node: Quantify, rank) -> Plan | None:
    """``∃∅ → ∅``."""
    if node.kind == EXISTS and isinstance(node.child, Empty):
        return Empty(node.child.rank - 1)
    return None


def _rw_quantify_forall_full(node: Quantify, rank) -> Plan | None:
    """``∀Tⁿ⁺¹ → Tⁿ`` — every extension of every path is in the full
    level, vacuously so for childless paths.  (The duals ``∃Tⁿ⁺¹`` and
    ``∀∅`` need nonemptiness of children and are *not* folded.)"""
    if node.kind == FORALL and isinstance(node.child, FullScan):
        return FullScan(node.child.rank - 1)
    return None


def _rw_exists_union(node: Quantify, rank) -> Plan | None:
    """``∃`` distributes over union."""
    if node.kind == EXISTS and isinstance(node.child, Union):
        return Union(tuple(Quantify(c, EXISTS)
                           for c in node.child.children))
    return None


def _rw_forall_intersect(node: Quantify, rank) -> Plan | None:
    """``∀`` distributes over intersection."""
    if node.kind == FORALL and isinstance(node.child, Intersect):
        return Intersect(tuple(Quantify(c, FORALL)
                               for c in node.child.children))
    return None


def _rw_join_empty(node: Join, rank) -> Plan | None:
    """``∅ × X → ∅`` (either side)."""
    if isinstance(node.left, Empty) or isinstance(node.right, Empty):
        return Empty(rank(node.left) + rank(node.right))
    return None


def _rw_join_full(node: Join, rank) -> Plan | None:
    """``Tᵐ × Tⁿ → Tᵐ⁺ⁿ`` — canonicalized splits always land in their
    levels, so every concatenated-level path qualifies."""
    if isinstance(node.left, FullScan) and isinstance(node.right, FullScan):
        return FullScan(node.left.rank + node.right.rank)
    return None


def _rw_join_ground(node: Join, rank) -> Plan | None:
    """A rank-0 × rank-0 join is an intersection of truth values."""
    if rank(node.left) == 0 and rank(node.right) == 0:
        return Intersect((node.left, node.right))
    return None


def _rw_join_hoist(node: Join, rank) -> Plan | None:
    """Hoist a rank-0 guard out of an Extend-tower join operand:
    ``Join(↑ᵏx₀, B) → Join(x₀, Join(Tᵏ, B))`` (and symmetrically).
    ``↑ᵏx₀`` is the whole level ``Tᵏ`` when the rank-0 core holds and
    ``∅`` otherwise, and a rank-0 left operand joins for free — the
    executor never canonicalizes the tower again."""
    k, core = _peel_extends(node.left)
    if k >= 1 and rank(core) == 0:
        return Join(core, Join(FullScan(k), node.right))
    k, core = _peel_extends(node.right)
    if k >= 1 and rank(core) == 0:
        return Join(core, Join(node.left, FullScan(k)))
    return None


def _rw_union_empty(node: Union, rank) -> Plan | None:
    """Drop ``∅`` members; an all-empty union is ``∅``."""
    kept = tuple(c for c in node.children if not isinstance(c, Empty))
    if len(kept) == len(node.children):
        return None
    if not kept:
        return Empty(rank(node))
    return kept[0] if len(kept) == 1 else Union(kept)


def _rw_union_full(node: Union, rank) -> Plan | None:
    """A union with a universal member is universal."""
    if any(isinstance(c, FullScan) for c in node.children):
        return FullScan(rank(node))
    return None


def _rw_union_complement(node: Union, rank) -> Plan | None:
    """Tautology: ``X ∪ ∁X ∪ … → Tⁿ``."""
    members = set(node.children)
    for c in node.children:
        if isinstance(c, Complement) and c.child in members:
            return FullScan(rank(node))
    return None


def _rw_union_absorb(node: Union, rank) -> Plan | None:
    """Absorption: ``X ∪ (X ∩ Y) → X``."""
    members = set(node.children)
    kept = tuple(
        c for c in node.children
        if not (isinstance(c, Intersect)
                and any(x in members for x in c.children)))
    if len(kept) == len(node.children):
        return None
    return kept[0] if len(kept) == 1 else Union(kept)


def _rw_intersect_full(node: Intersect, rank) -> Plan | None:
    """Drop ``Tⁿ`` members; an all-universal intersection is ``Tⁿ``."""
    kept = tuple(c for c in node.children if not isinstance(c, FullScan))
    if len(kept) == len(node.children):
        return None
    if not kept:
        return FullScan(rank(node))
    return kept[0] if len(kept) == 1 else Intersect(kept)


def _rw_intersect_empty(node: Intersect, rank) -> Plan | None:
    """An intersection with an ``∅`` member is ``∅``."""
    if any(isinstance(c, Empty) for c in node.children):
        return Empty(rank(node))
    return None


def _rw_intersect_complement(node: Intersect, rank) -> Plan | None:
    """Contradiction: ``X ∩ ∁X ∩ … → ∅``."""
    members = set(node.children)
    for c in node.children:
        if isinstance(c, Complement) and c.child in members:
            return Empty(rank(node))
    return None


def _rw_intersect_absorb(node: Intersect, rank) -> Plan | None:
    """Absorption: ``X ∩ (X ∪ Y) → X``."""
    members = set(node.children)
    kept = tuple(
        c for c in node.children
        if not (isinstance(c, Union)
                and any(x in members for x in c.children)))
    if len(kept) == len(node.children):
        return None
    return kept[0] if len(kept) == 1 else Intersect(kept)


def _rw_intersect_filter(node: Intersect, rank) -> Plan | None:
    """Hoist a filter chain over ``Tⁿ`` onto its siblings:
    ``σ…σ(Tⁿ) ∩ X → σ…σ(X)`` — filters are pointwise predicates, so
    intersecting with a filtered full level just filters."""
    if len(node.children) < 2:
        return None
    for idx, child in enumerate(node.children):
        chain, base = _peel_filters(child)
        if chain and isinstance(base, FullScan):
            rest = node.children[:idx] + node.children[idx + 1:]
            out: Plan = rest[0] if len(rest) == 1 else Intersect(rest)
            for spec in reversed(chain):
                out = _refilter(spec, out)
            return out
    return None


# ---------------------------------------------------------------------------
# Registry and driver.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Rule:
    """One named rewrite: ``fn(node, rank) -> Plan | None``."""

    name: str
    types: type | tuple[type, ...]
    fn: object

    def apply(self, node: Plan, rank) -> Plan | None:
        """The rule's replacement for ``node``, or ``None``."""
        if not isinstance(node, self.types):
            return None
        return self.fn(node, rank)


#: The full rule catalog, in application order (docs/optimizer.md
#: renders the same list as prose with before/after trees).
RULES: tuple[Rule, ...] = (
    Rule("complement-complement", Complement, _rw_complement_complement),
    Rule("complement-empty", Complement, _rw_complement_empty),
    Rule("complement-full", Complement, _rw_complement_full),
    Rule("complement-union", Complement, _rw_complement_union),
    Rule("complement-intersect", Complement, _rw_complement_intersect),
    Rule("complement-quantify", Complement, _rw_complement_quantify),
    Rule("filter-empty", (FilterEq, FilterAtom), _rw_filter_empty),
    Rule("filter-eq-resolve", FilterEq, _rw_filter_eq_resolve),
    Rule("filter-eq-trivial", FilterEq, _rw_filter_eq_trivial),
    Rule("filter-eq-order", FilterEq, _rw_filter_eq_order),
    Rule("filter-eq-atom", FilterEq, _rw_filter_eq_atom),
    Rule("filter-eq-project", FilterEq, _rw_filter_eq_project),
    Rule("project-empty", Project, _rw_project_empty),
    Rule("project-project", Project, _rw_project_project),
    Rule("project-identity", Project, _rw_project_identity),
    Rule("project-prefix", Project, _rw_project_prefix),
    Rule("extend-empty", Extend, _rw_extend_empty),
    Rule("extend-full", Extend, _rw_extend_full),
    Rule("quantify-exists-empty", Quantify, _rw_quantify_exists_empty),
    Rule("quantify-forall-full", Quantify, _rw_quantify_forall_full),
    Rule("exists-union", Quantify, _rw_exists_union),
    Rule("forall-intersect", Quantify, _rw_forall_intersect),
    Rule("join-empty", Join, _rw_join_empty),
    Rule("join-full", Join, _rw_join_full),
    Rule("join-ground", Join, _rw_join_ground),
    Rule("join-hoist", Join, _rw_join_hoist),
    Rule("union-empty", Union, _rw_union_empty),
    Rule("union-full", Union, _rw_union_full),
    Rule("union-complement", Union, _rw_union_complement),
    Rule("union-absorb", Union, _rw_union_absorb),
    Rule("intersect-full", Intersect, _rw_intersect_full),
    Rule("intersect-empty", Intersect, _rw_intersect_empty),
    Rule("intersect-complement", Intersect, _rw_intersect_complement),
    Rule("intersect-absorb", Intersect, _rw_intersect_absorb),
    Rule("intersect-filter", Intersect, _rw_intersect_filter),
)

RULE_NAMES: tuple[str, ...] = tuple(r.name for r in RULES)


def _map_children(plan: Plan, fn) -> Plan:
    """``plan`` with every direct child mapped through ``fn`` (node
    identity preserved when nothing changed)."""
    if isinstance(plan, LEAVES):
        return plan
    if isinstance(plan, (Union, Intersect)):
        children = tuple(fn(c) for c in plan.children)
        return plan if children == plan.children else type(plan)(children)
    if isinstance(plan, Join):
        left, right = fn(plan.left), fn(plan.right)
        if left is plan.left and right is plan.right:
            return plan
        return Join(left, right)
    child = fn(plan.child)  # type: ignore[attr-defined]
    if child is plan.child:  # type: ignore[attr-defined]
        return plan
    if isinstance(plan, FilterEq):
        return FilterEq(child, plan.i, plan.j)
    if isinstance(plan, FilterAtom):
        return FilterAtom(child, plan.index, plan.positions, plan.negate)
    if isinstance(plan, Project):
        return Project(child, plan.coords)
    if isinstance(plan, Extend):
        return Extend(child)
    if isinstance(plan, Quantify):
        return Quantify(child, plan.kind)
    if isinstance(plan, Complement):
        return Complement(child)
    raise TypeError(f"unknown plan node {plan!r}")


def _rewrite_pass(plan: Plan, rank: _Ranker, rules: Sequence[Rule],
                  counts: dict[str, int]) -> Plan:
    """One bottom-up pass: children first, then local rules to a
    (bounded) local fixpoint."""
    plan = _map_children(
        plan, lambda c: _rewrite_pass(c, rank, rules, counts))
    for __ in range(_NODE_ITERATIONS):
        if rank(plan) is None:
            # Ill-ranked or dynamic (fixpoint below): leave the node
            # exactly as written so execution errors are preserved.
            return plan
        for rule in rules:
            out = rule.apply(plan, rank)
            if out is not None and out != plan:
                counts[rule.name] = counts.get(rule.name, 0) + 1
                plan = out
                break
        else:
            return plan
    return plan


@dataclass(frozen=True)
class OptimizeResult:
    """An optimized plan plus the evidence: which rules fired how
    often, and how many whole-tree passes ran."""

    plan: Plan
    rewrites: tuple[tuple[str, int], ...]
    passes: int

    @property
    def total_rewrites(self) -> int:
        """Total rule applications across all passes."""
        return sum(n for __, n in self.rewrites)


def optimize_result(plan: Plan,
                    signature: Sequence[int] | None = None, *,
                    rules: Iterable[str] | None = None,
                    max_passes: int = limits.OPTIMIZER_PASSES,
                    ) -> OptimizeResult:
    """Optimize a plan, reporting per-rule rewrite counts.

    ``rules`` restricts the catalog to the named subset (the property
    tests exercise each rule in isolation this way); unknown names
    raise ``ValueError``.  ``max_passes`` caps the pass loop (see
    ``docs/limits.md``); the loop stops early at the first pass that
    changes nothing, so the cap only bites on pathological plans.
    """
    if rules is None:
        selected: tuple[Rule, ...] = RULES
    else:
        wanted = set(rules)
        unknown = wanted - set(RULE_NAMES)
        if unknown:
            raise ValueError(f"unknown optimizer rules: {sorted(unknown)}")
        selected = tuple(r for r in RULES if r.name in wanted)
    rank = _Ranker(signature)
    counts: dict[str, int] = {}
    current = normalize(plan, signature)
    passes = 0
    while passes < max_passes:
        before = current
        current = normalize(
            _rewrite_pass(current, rank, selected, counts), signature)
        passes += 1
        if current == before:
            break
    return OptimizeResult(current, tuple(sorted(counts.items())), passes)


def optimize(plan: Plan, signature: Sequence[int] | None = None, *,
             rules: Iterable[str] | None = None,
             max_passes: int = limits.OPTIMIZER_PASSES) -> Plan:
    """The optimized (and normalized) form of ``plan``.

    Semantics-preserving by construction: every rule is exact on
    representative sets (the property battery and the ``optimizer``
    fuzz oracle check this against the interpreted path bit for bit).
    """
    return optimize_result(plan, signature, rules=rules,
                           max_passes=max_passes).plan


# ---------------------------------------------------------------------------
# Cross-batch common-subplan extraction.
# ---------------------------------------------------------------------------

def iter_subplans(plan: Plan):
    """Yield every node of ``plan`` (preorder, with repetitions)."""
    stack = [plan]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, LEAVES):
            continue
        if isinstance(node, (Union, Intersect)):
            stack.extend(node.children)
        elif isinstance(node, Join):
            stack.append(node.left)
            stack.append(node.right)
        else:
            stack.append(node.child)  # type: ignore[attr-defined]


def common_subplans(plans: Sequence[Plan]) -> frozenset[Plan]:
    """Non-leaf subplans occurring at least twice across ``plans``.

    ``Engine.eval_batch`` marks these as materialization points: the
    compiled backend keeps a result-cache boundary at each (instead of
    fusing through it), so a subplan shared by several batch members is
    computed once per batch and probed by the rest — and the probes are
    counted separately (``CacheStats.shared_hits``).
    """
    counts: dict[Plan, int] = {}
    for plan in plans:
        for node in iter_subplans(plan):
            if not isinstance(node, LEAVES):
                counts[node] = counts.get(node, 0) + 1
    return frozenset(p for p, n in counts.items() if n >= 2)
