"""Engine observability: counters, timings, and printable snapshots.

The paper's own cost model for query evaluation is *oracle questions* —
Definition 2.4 queries a database only through "is u ∈ Rᵢ?" questions,
and every experiment reports how many an algorithm asked.  The engine
adopts that model and extends it with the operational counters a serving
layer needs: cache hits/misses/evictions at both levels, per-node-kind
execution timings, and wall time.

:class:`EngineStats` is an immutable snapshot; the live engine holds a
:class:`MutableEngineStats` and snapshots it on demand (CLI ``--stats``,
benchmarks, tests).  The mutable tables are lock-protected, so engines
shared between threads (see ``docs/concurrency.md``) never lose counts
to interleaved read-modify-write updates, and a :meth:`MutableEngineStats.
snapshot` taken mid-traffic is internally consistent.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss/eviction counters of one cache level.

    ``shared_hits``/``shared_misses`` split out the lookups made on
    behalf of *shared* subplan boundaries — interior probes of the
    compiled path and batch common subplans — from root-level requests.
    They are a subset of ``hits``/``misses``, not an addition: every
    shared probe also counts in the totals, so ``requests`` keeps its
    historical meaning.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    shared_hits: int = 0
    shared_misses: int = 0

    @property
    def requests(self) -> int:
        """Total counted lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per request (0.0 when the cache was never consulted)."""
        return self.hits / self.requests if self.requests else 0.0

    def to_dict(self) -> dict:
        """A JSON-safe dict (round-trips through :meth:`from_dict`)."""
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "size": self.size,
                "shared_hits": self.shared_hits,
                "shared_misses": self.shared_misses}

    @staticmethod
    def from_dict(data: dict) -> "CacheStats":
        """Rebuild a :class:`CacheStats` from :meth:`to_dict` output.

        Accepts pre-split dicts (no ``shared_*`` keys) for wire
        compatibility with older serving tiers.
        """
        return CacheStats(hits=data["hits"], misses=data["misses"],
                          evictions=data["evictions"], size=data["size"],
                          shared_hits=data.get("shared_hits", 0),
                          shared_misses=data.get("shared_misses", 0))

    def merge(self, other: "CacheStats") -> "CacheStats":
        """The element-wise sum of two snapshots (disjoint caches)."""
        return CacheStats(hits=self.hits + other.hits,
                          misses=self.misses + other.misses,
                          evictions=self.evictions + other.evictions,
                          size=self.size + other.size,
                          shared_hits=self.shared_hits + other.shared_hits,
                          shared_misses=(self.shared_misses
                                         + other.shared_misses))


@dataclass(frozen=True)
class OptimizerStats:
    """Counters of the plan-optimization and compilation pipeline.

    ``optimizations`` counts distinct plans optimized (memo misses, not
    warm lookups), ``compiles`` counts closure compilations, and
    ``rewrites`` maps rule name to total firings across all optimized
    plans — the observable record of *which* algebraic laws actually
    pay off on a workload (``docs/optimizer.md``).
    """

    optimizations: int = 0
    compiles: int = 0
    rewrites: tuple[tuple[str, int], ...] = ()

    @property
    def total_rewrites(self) -> int:
        """Total rule firings across all rules."""
        return sum(n for __, n in self.rewrites)

    def to_dict(self) -> dict:
        """A JSON-safe dict (round-trips through :meth:`from_dict`)."""
        return {"optimizations": self.optimizations,
                "compiles": self.compiles,
                "rewrites": {name: n for name, n in self.rewrites}}

    @staticmethod
    def from_dict(data: dict) -> "OptimizerStats":
        """Rebuild an :class:`OptimizerStats` from :meth:`to_dict`
        output."""
        return OptimizerStats(
            optimizations=data["optimizations"],
            compiles=data["compiles"],
            rewrites=tuple(sorted(data["rewrites"].items())))

    def merge(self, other: "OptimizerStats") -> "OptimizerStats":
        """Sum two snapshots, combining rule tallies by name."""
        rewrites: dict[str, int] = dict(self.rewrites)
        for name, n in other.rewrites:
            rewrites[name] = rewrites.get(name, 0) + n
        return OptimizerStats(
            optimizations=self.optimizations + other.optimizations,
            compiles=self.compiles + other.compiles,
            rewrites=tuple(sorted(rewrites.items())))


@dataclass(frozen=True)
class EngineStats:
    """One immutable engine snapshot.

    ``oracle_questions`` counts ``≅_B`` oracle invocations (the
    :class:`~repro.util.memo.CallCounter` wrapped around the database's
    equivalence predicate) — the paper's currency.  ``node_timings``
    maps plan-node kind to ``(executions, total_seconds)``.
    """

    plan_cache: CacheStats = CacheStats()
    result_cache: CacheStats = CacheStats()
    optimizer: OptimizerStats = OptimizerStats()
    oracle_questions: int = 0
    evaluations: int = 0
    batch_requests: int = 0
    wall_time: float = 0.0
    node_timings: tuple[tuple[str, int, float], ...] = ()
    verdicts_true: int = 0
    verdicts_false: int = 0
    verdicts_unknown: int = 0
    unknown_reasons: tuple[tuple[str, int], ...] = ()

    def to_dict(self) -> dict:
        """A JSON-safe dict of the whole snapshot.

        This is the wire format of the serving tier's ``GET /stats``
        endpoint; ``json.dumps(stats.to_dict())`` always succeeds and
        :meth:`from_dict` inverts it exactly (tuples become lists in
        JSON and are restored on the way back).
        """
        return {
            "plan_cache": self.plan_cache.to_dict(),
            "result_cache": self.result_cache.to_dict(),
            "optimizer": self.optimizer.to_dict(),
            "oracle_questions": self.oracle_questions,
            "evaluations": self.evaluations,
            "batch_requests": self.batch_requests,
            "wall_time": self.wall_time,
            "node_timings": [[kind, count, seconds]
                             for kind, count, seconds in self.node_timings],
            "verdicts": {"true": self.verdicts_true,
                         "false": self.verdicts_false,
                         "unknown": self.verdicts_unknown},
            "unknown_reasons": {r: n for r, n in self.unknown_reasons},
        }

    @staticmethod
    def from_dict(data: dict) -> "EngineStats":
        """Rebuild an :class:`EngineStats` from :meth:`to_dict` output
        (including a ``json.loads(json.dumps(...))`` round trip)."""
        verdicts = data["verdicts"]
        return EngineStats(
            plan_cache=CacheStats.from_dict(data["plan_cache"]),
            result_cache=CacheStats.from_dict(data["result_cache"]),
            optimizer=OptimizerStats.from_dict(
                data.get("optimizer", OptimizerStats().to_dict())),
            oracle_questions=data["oracle_questions"],
            evaluations=data["evaluations"],
            batch_requests=data["batch_requests"],
            wall_time=data["wall_time"],
            node_timings=tuple(
                (kind, count, seconds)
                for kind, count, seconds in data["node_timings"]),
            verdicts_true=verdicts["true"],
            verdicts_false=verdicts["false"],
            verdicts_unknown=verdicts["unknown"],
            unknown_reasons=tuple(
                sorted(data["unknown_reasons"].items())),
        )

    def merge(self, other: "EngineStats") -> "EngineStats":
        """Combine two snapshots from *different* engines into one.

        This is the join-side aggregation of the ingest pipeline
        (``python -m repro ingest``): each worker process ships the
        :class:`EngineStats` of its private engine back to the parent,
        which folds them into one fleet-wide view.  Scalars add, cache
        and optimizer snapshots add component-wise, and the keyed
        tables (``node_timings``, ``unknown_reasons``) merge by key.
        Only meaningful across engines that do not share caches —
        merging two snapshots of one engine would double-count.
        """
        timings: dict[str, list] = {
            kind: [count, seconds]
            for kind, count, seconds in self.node_timings}
        for kind, count, seconds in other.node_timings:
            entry = timings.setdefault(kind, [0, 0.0])
            entry[0] += count
            entry[1] += seconds
        reasons: dict[str, int] = dict(self.unknown_reasons)
        for reason, n in other.unknown_reasons:
            reasons[reason] = reasons.get(reason, 0) + n
        return EngineStats(
            plan_cache=self.plan_cache.merge(other.plan_cache),
            result_cache=self.result_cache.merge(other.result_cache),
            optimizer=self.optimizer.merge(other.optimizer),
            oracle_questions=self.oracle_questions + other.oracle_questions,
            evaluations=self.evaluations + other.evaluations,
            batch_requests=self.batch_requests + other.batch_requests,
            wall_time=self.wall_time + other.wall_time,
            node_timings=tuple(
                (kind, count, seconds)
                for kind, (count, seconds) in sorted(
                    timings.items(), key=lambda kv: -kv[1][1])),
            verdicts_true=self.verdicts_true + other.verdicts_true,
            verdicts_false=self.verdicts_false + other.verdicts_false,
            verdicts_unknown=self.verdicts_unknown + other.verdicts_unknown,
            unknown_reasons=tuple(sorted(reasons.items())),
        )

    def format(self) -> str:
        """A human-readable block (the CLI's ``--stats`` output)."""
        lines = [
            "EngineStats",
            f"  evaluations:      {self.evaluations} "
            f"({self.batch_requests} batched requests)",
            f"  wall time:        {self.wall_time * 1e3:.3f} ms",
            f"  oracle questions: {self.oracle_questions}",
            f"  plan cache:       {self.plan_cache.hits} hits / "
            f"{self.plan_cache.misses} misses / "
            f"{self.plan_cache.evictions} evictions "
            f"(hit rate {self.plan_cache.hit_rate:.0%}, "
            f"size {self.plan_cache.size})",
            f"  result cache:     {self.result_cache.hits} hits / "
            f"{self.result_cache.misses} misses / "
            f"{self.result_cache.evictions} evictions "
            f"(hit rate {self.result_cache.hit_rate:.0%}, "
            f"size {self.result_cache.size}, shared "
            f"{self.result_cache.shared_hits}/"
            f"{self.result_cache.shared_misses})",
        ]
        if self.optimizer.optimizations or self.optimizer.compiles:
            lines.append(
                f"  optimizer:        {self.optimizer.optimizations} "
                f"plans optimized / {self.optimizer.total_rewrites} "
                f"rewrites / {self.optimizer.compiles} compiles")
        if self.verdicts_true or self.verdicts_false or self.verdicts_unknown:
            reasons = ", ".join(f"{r}={n}" for r, n in self.unknown_reasons)
            lines.append(
                f"  verdicts:         {self.verdicts_true} true / "
                f"{self.verdicts_false} false / "
                f"{self.verdicts_unknown} unknown"
                + (f" ({reasons})" if reasons else ""))
        if self.node_timings:
            lines.append("  per-node timings:")
            for kind, count, seconds in self.node_timings:
                lines.append(
                    f"    {kind:<16} {count:>6} × "
                    f"{seconds / count * 1e6:>9.1f} µs "
                    f"(total {seconds * 1e3:.3f} ms)")
        return "\n".join(lines)


@dataclass
class MutableEngineStats:
    """The live counters an :class:`~repro.engine.executor.Engine` keeps.

    Thread-safe: every mutation runs under one private lock (use
    :meth:`add` for the scalar counters rather than ``+=`` on the
    public attributes), and :meth:`snapshot` freezes a consistent view
    even while other threads keep recording.
    """

    oracle_questions: int = 0
    evaluations: int = 0
    batch_requests: int = 0
    compiles: int = 0
    wall_time: float = 0.0
    node_counts: dict = field(default_factory=dict)
    node_seconds: dict = field(default_factory=dict)
    verdict_counts: dict = field(default_factory=dict)
    unknown_reasons: dict = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def add(self, *, oracle_questions: int = 0, evaluations: int = 0,
            batch_requests: int = 0, compiles: int = 0,
            wall_time: float = 0.0) -> None:
        """Atomically accumulate the scalar counters.

        The race-free replacement for the historical ``stats.counter
        += n`` read-modify-write pattern.
        """
        with self._lock:
            self.oracle_questions += oracle_questions
            self.evaluations += evaluations
            self.batch_requests += batch_requests
            self.compiles += compiles
            self.wall_time += wall_time

    def record_node(self, kind: str, seconds: float) -> None:
        """Accumulate one plan-node execution into the timing tables."""
        with self._lock:
            self.node_counts[kind] = self.node_counts.get(kind, 0) + 1
            self.node_seconds[kind] = (
                self.node_seconds.get(kind, 0.0) + seconds)

    def record_verdict(self, status: str, reason: str | None = None) -> None:
        """Count one :class:`~repro.engine.verdict.Verdict` by status
        (and, for UNKNOWN, by machine-readable reason)."""
        with self._lock:
            self.verdict_counts[status] = (
                self.verdict_counts.get(status, 0) + 1)
            if reason is not None:
                self.unknown_reasons[reason] = (
                    self.unknown_reasons.get(reason, 0) + 1)

    def snapshot(self, plan_cache: CacheStats,
                 result_cache: CacheStats,
                 optimizations: int = 0,
                 rewrites: tuple[tuple[str, int], ...] = ()) -> EngineStats:
        """Freeze the live counters into an :class:`EngineStats`.

        ``optimizations``/``rewrites`` come from the (shareable) plan
        cache's optimizer memo; ``compiles`` is engine-local.
        """
        with self._lock:
            timings = tuple(
                (kind, self.node_counts[kind], self.node_seconds[kind])
                for kind in sorted(self.node_counts,
                                   key=lambda k: -self.node_seconds[k]))
            return EngineStats(
                plan_cache=plan_cache,
                result_cache=result_cache,
                optimizer=OptimizerStats(
                    optimizations=optimizations,
                    compiles=self.compiles,
                    rewrites=rewrites),
                oracle_questions=self.oracle_questions,
                evaluations=self.evaluations,
                batch_requests=self.batch_requests,
                wall_time=self.wall_time,
                node_timings=timings,
                verdicts_true=self.verdict_counts.get("true", 0),
                verdicts_false=self.verdict_counts.get("false", 0),
                verdicts_unknown=self.verdict_counts.get("unknown", 0),
                unknown_reasons=tuple(
                    sorted(self.unknown_reasons.items())),
            )

    def absorb(self, stats: EngineStats) -> None:
        """Fold a *worker process's* snapshot into these live counters.

        The join-side half of the sharded executor
        (:mod:`repro.engine.shard`): workers ship the
        :class:`EngineStats` of one task back as JSON and the
        coordinator folds the engine-core counters — scalars, node
        timings, verdict tallies, unknown reasons, and the worker's
        compile count — into its own engine's live stats.  The cache
        sections are deliberately **not** absorbed: they describe the
        worker's private caches, whose occupancy would double-count
        against the coordinator's own cache snapshots.
        """
        with self._lock:
            self.oracle_questions += stats.oracle_questions
            self.evaluations += stats.evaluations
            self.batch_requests += stats.batch_requests
            self.compiles += stats.optimizer.compiles
            self.wall_time += stats.wall_time
            for kind, count, seconds in stats.node_timings:
                self.node_counts[kind] = self.node_counts.get(kind, 0) + count
                self.node_seconds[kind] = (
                    self.node_seconds.get(kind, 0.0) + seconds)
            for status, n in (("true", stats.verdicts_true),
                              ("false", stats.verdicts_false),
                              ("unknown", stats.verdicts_unknown)):
                if n:
                    self.verdict_counts[status] = (
                        self.verdict_counts.get(status, 0) + n)
            for reason, n in stats.unknown_reasons:
                self.unknown_reasons[reason] = (
                    self.unknown_reasons.get(reason, 0) + n)

    def reset(self) -> None:
        """Zero every live counter."""
        with self._lock:
            self.oracle_questions = 0
            self.evaluations = 0
            self.batch_requests = 0
            self.compiles = 0
            self.wall_time = 0.0
            self.node_counts.clear()
            self.node_seconds.clear()
            self.verdict_counts.clear()
            self.unknown_reasons.clear()


class Timer:
    """A tiny context manager accumulating wall time."""

    __slots__ = ("seconds", "_start")

    def __init__(self):
        self.seconds = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self._start
