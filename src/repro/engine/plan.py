"""The engine's plan IR — one algebra all four frontends lower into.

Every query language in this library ultimately denotes a *union of
``≅_B`` classes* of one rank (that is what genericity, Definition 2.4,
buys: a generic query cannot split a class).  The plan IR makes that
explicit: a :class:`Plan` is a finite dataflow tree whose nodes denote
finite sets of characteristic-tree paths, and the executor evaluates it
bottom-up against an :class:`~repro.symmetric.hsdb.HSDatabase`.

Node kinds (the ISSUE's scan/filter/quantify/fixpoint/project, plus the
boolean combinators they need):

* **scan** — :class:`Scan` (the representatives ``Cᵢ`` of a stored
  relation) and :class:`FullScan` (the whole level ``Tⁿ``);
* **filter** — :class:`FilterEq` (coordinate equality) and
  :class:`FilterAtom` (σ over a stored relation);
* **project** — :class:`Project` (reorder / duplicate / drop
  coordinates, canonicalized back onto the tree) and :class:`Extend`
  (the tree-extension ``↑``, its right inverse);
* **quantify** — :class:`Quantify` binds away the *last* coordinate,
  existentially or universally;
* **join** — :class:`Join`, the representative-level cartesian product
  (QLhs ``Product``);
* **fixpoint** — :class:`Fixpoint` wraps a full QLhs program (its
  ``while`` loops are the iteration-to-fixpoint the node is named for)
  and :class:`MachineFixpoint` wraps a Theorem 5.1 GMhs query
  procedure; both are opaque to algebraic rewrites but participate in
  caching through their (hashable) payloads;
* **combinators** — :class:`Union`, :class:`Intersect`,
  :class:`Complement` (relative to ``Tⁿ``).

All nodes are frozen dataclasses: hashable, comparable, safe as cache
keys.  :func:`normalize` computes the canonical form the plan cache
keys on; :func:`plan_rank` is the static rank checker.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from ..errors import RankMismatchError, TypeSignatureError
from ..qlhs.ast import Program
from ..trace import limits


class Plan:
    """Base class of all plan nodes."""

    def __and__(self, other: "Plan") -> "Plan":
        return Intersect((self, other))

    def __or__(self, other: "Plan") -> "Plan":
        return Union((self, other))

    def __invert__(self) -> "Plan":
        return Complement(self)


# ---------------------------------------------------------------------------
# Scans.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Scan(Plan):
    """The stored relation ``Rᵢ`` as its representative set ``Cᵢ``."""

    index: int


@dataclass(frozen=True)
class FullScan(Plan):
    """``Tⁿ`` — every class of rank ``rank``."""

    rank: int


@dataclass(frozen=True)
class Empty(Plan):
    """``∅`` at rank ``rank`` — the other constant relation.

    No frontend emits it; the optimizer's folding rules
    (:mod:`repro.engine.optimize`) introduce it when a subplan is
    statically contradictory (``X ∩ ∁X``, ``∁Tⁿ``, …), and further
    rules propagate it upward.  Genericity makes the folds exact: an
    empty union of ``≅_B`` classes stays empty under every generic
    operation that does not reintroduce paths.
    """

    rank: int


# ---------------------------------------------------------------------------
# Filters.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FilterEq(Plan):
    """Keep paths whose coordinates ``i`` and ``j`` carry equal labels.

    Sound on representatives because ``≅_B`` refines the equality
    pattern: two equivalent tuples agree on which coordinates coincide.
    Negative indices count from the end, as in
    :class:`~repro.qlhs.ast.SelectEq`.
    """

    child: Plan
    i: int
    j: int


@dataclass(frozen=True)
class FilterAtom(Plan):
    """``σ_{(p[pos₁],…,p[pos_a]) ∈ R_index}`` (or its negation).

    The projected tuple is canonicalized and tested against the
    representation's membership reconstruction.
    """

    child: Plan
    index: int
    positions: tuple[int, ...]
    negate: bool = False

    def __init__(self, child: Plan, index: int,
                 positions: Sequence[int], negate: bool = False):
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "index", index)
        object.__setattr__(self, "positions", tuple(positions))
        object.__setattr__(self, "negate", bool(negate))


# ---------------------------------------------------------------------------
# Projections.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Project(Plan):
    """Output ``canon(p[c₁], …, p[c_m])`` for each child path ``p``.

    Subsumes QLhs ``↓`` (drop coordinate 0), ``~`` (swap the last two),
    and ``Permute``; coordinates may repeat or be dropped.  Projection
    preserves ``≅_B`` classes (genericity again), so canonicalizing the
    projected tuple is exact, not approximate.
    """

    child: Plan
    coords: tuple[int, ...]

    def __init__(self, child: Plan, coords: Sequence[int]):
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "coords", tuple(coords))


@dataclass(frozen=True)
class Extend(Plan):
    """``↑`` — every one-label tree extension of every child path."""

    child: Plan


@dataclass(frozen=True)
class Join(Plan):
    """Cartesian product on representatives (QLhs ``Product``).

    ``{r ∈ T^{m+n} : canon(r[:m]) ∈ left ∧ canon(r[m:]) ∈ right}`` —
    scanning the concatenated level is what makes overlapping-element
    classes (absent from naive concatenation) appear, exactly as the
    interpreter's intrinsic computes it.
    """

    left: Plan
    right: Plan


# ---------------------------------------------------------------------------
# Quantification.
# ---------------------------------------------------------------------------

EXISTS = "exists"
FORALL = "forall"


@dataclass(frozen=True)
class Quantify(Plan):
    """Bind away the last coordinate of the child.

    ``exists``: a rank-``n`` class survives iff *some* extension of its
    representative lies in the child — and because quantifiers
    relativize to the characteristic tree (Theorem 6.3, first
    direction), "some extension" means "some tree child".  ``forall`` is
    the De Morgan dual, evaluated directly for exactness.
    """

    child: Plan
    kind: str  # EXISTS | FORALL

    def __post_init__(self):
        if self.kind not in (EXISTS, FORALL):
            raise ValueError(f"unknown quantifier kind {self.kind!r}")


# ---------------------------------------------------------------------------
# Combinators.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Union(Plan):
    """n-ary union of same-rank children (flattened by ``normalize``)."""

    children: tuple[Plan, ...]

    def __init__(self, children: Sequence[Plan]):
        object.__setattr__(self, "children", tuple(children))


@dataclass(frozen=True)
class Intersect(Plan):
    """n-ary intersection of same-rank children (QLhs ``∩``)."""

    children: tuple[Plan, ...]

    def __init__(self, children: Sequence[Plan]):
        object.__setattr__(self, "children", tuple(children))


@dataclass(frozen=True)
class Complement(Plan):
    """``Tⁿ − child`` — complement within the child's rank."""

    child: Plan


# ---------------------------------------------------------------------------
# Fixpoints (opaque procedural payloads).
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fixpoint(Plan):
    """A full QLhs program, run to completion by the interpreter.

    QLhs ``while`` loops iterate to a stopping condition — the node's
    namesake.  The program AST is a frozen dataclass tree, so the node
    hashes structurally and result-caches across calls.
    """

    program: Program
    result_var: str = "Y1"


@dataclass(frozen=True)
class MachineFixpoint(Plan):
    """A Theorem 5.1 GMhs query procedure (run via ``run_query_gmhs``).

    The procedure is a Python callable; it hashes by identity, which
    bounds cache reuse to the lifetime of the callable — exactly the
    guarantee a per-process result cache can honour.

    ``max_steps`` caps the loading stage's synchronous GMhs steps; the
    executor combines it with the engine budget's deadline and
    cancellation flag (see ``docs/limits.md``).  Plans stay hashable,
    so the knob is a plain integer, not a live
    :class:`~repro.trace.Budget`.
    """

    procedure: object  # QueryProcedure; hashable by identity
    search_window: int = 512
    max_steps: int = limits.MACHINE_FIXPOINT


@dataclass(frozen=True)
class FcfFixpoint(Plan):
    """A QLf+ program over an fcf-r-db (Section 4 semantics).

    Evaluates to an :class:`~repro.fcf.relation.FcfValue` rather than a
    path set; only :class:`~repro.engine.executor.Engine` instances
    constructed over an :class:`~repro.fcf.database.FcfDatabase` execute
    it.
    """

    program: Program


# ---------------------------------------------------------------------------
# Hash caching.
# ---------------------------------------------------------------------------

def _install_cached_hash(cls: type) -> None:
    """Replace the dataclass-generated ``__hash__`` with a caching one.

    Plans are used as dict keys everywhere (both cache levels, the
    optimizer's memos, batch shared sets), and the generated hash walks
    the whole subtree on every call — profiling showed recursive
    hashing dominating cold evaluation.  Nodes are frozen, so the hash
    is computed once and stashed on the instance; child hashes are
    themselves cached, making the first hash of a tree ``O(n)`` total
    and every later one ``O(1)``.
    """
    generated = cls.__hash__

    def cached_hash(self, _generated=generated):
        h = self.__dict__.get("_hash")
        if h is None:
            h = _generated(self)
            object.__setattr__(self, "_hash", h)
        return h

    cls.__hash__ = cached_hash


for _cls in (Scan, FullScan, Empty, FilterEq, FilterAtom, Project, Extend,
             Join, Quantify, Union, Intersect, Complement, Fixpoint,
             MachineFixpoint, FcfFixpoint):
    _install_cached_hash(_cls)


# ---------------------------------------------------------------------------
# Static rank computation.
# ---------------------------------------------------------------------------

def plan_rank(plan: Plan, signature: Sequence[int]) -> int:
    """The output rank of a plan, statically (raises on rank errors)."""
    signature = tuple(signature)
    if isinstance(plan, Scan):
        if not 0 <= plan.index < len(signature):
            raise TypeSignatureError(
                f"Scan({plan.index}) out of range for type {signature}")
        return signature[plan.index]
    if isinstance(plan, FullScan):
        if plan.rank < 0:
            raise RankMismatchError("FullScan rank must be >= 0")
        return plan.rank
    if isinstance(plan, Empty):
        if plan.rank < 0:
            raise RankMismatchError("Empty rank must be >= 0")
        return plan.rank
    if isinstance(plan, FilterEq):
        n = plan_rank(plan.child, signature)
        i = plan.i if plan.i >= 0 else n + plan.i
        j = plan.j if plan.j >= 0 else n + plan.j
        if not (0 <= i < n and 0 <= j < n):
            raise RankMismatchError(
                f"FilterEq({plan.i}, {plan.j}) out of range for rank {n}")
        return n
    if isinstance(plan, FilterAtom):
        n = plan_rank(plan.child, signature)
        if not 0 <= plan.index < len(signature):
            raise TypeSignatureError(
                f"FilterAtom relation {plan.index} out of range for "
                f"type {signature}")
        if len(plan.positions) != signature[plan.index]:
            raise RankMismatchError(
                f"FilterAtom has {len(plan.positions)} positions; "
                f"R{plan.index + 1} has arity {signature[plan.index]}")
        if any(not 0 <= c < n for c in plan.positions):
            raise RankMismatchError(
                f"FilterAtom positions {plan.positions} out of range "
                f"for rank {n}")
        return n
    if isinstance(plan, Project):
        n = plan_rank(plan.child, signature)
        if any(not 0 <= c < n for c in plan.coords):
            raise RankMismatchError(
                f"Project coords {plan.coords} out of range for rank {n}")
        return len(plan.coords)
    if isinstance(plan, Extend):
        return plan_rank(plan.child, signature) + 1
    if isinstance(plan, Join):
        return (plan_rank(plan.left, signature)
                + plan_rank(plan.right, signature))
    if isinstance(plan, Quantify):
        n = plan_rank(plan.child, signature)
        if n == 0:
            raise RankMismatchError("Quantify needs rank >= 1")
        return n - 1
    if isinstance(plan, (Union, Intersect)):
        ranks = {plan_rank(c, signature) for c in plan.children}
        if not plan.children:
            raise RankMismatchError(
                f"{type(plan).__name__} needs at least one child")
        if len(ranks) != 1:
            raise RankMismatchError(
                f"{type(plan).__name__} over mixed ranks {sorted(ranks)}")
        return ranks.pop()
    if isinstance(plan, Complement):
        return plan_rank(plan.child, signature)
    if isinstance(plan, (Fixpoint, MachineFixpoint, FcfFixpoint)):
        raise RankMismatchError(
            f"{type(plan).__name__} rank is dynamic (known only after "
            "execution)")
    raise TypeError(f"unknown plan node {plan!r}")


# ---------------------------------------------------------------------------
# Normalization (the plan-cache key).
# ---------------------------------------------------------------------------

def _node_key(plan: Plan) -> str:
    """A stable ordering key for commutative children."""
    return repr(plan)


def normalize(plan: Plan, signature: Sequence[int] | None = None) -> Plan:
    """The canonical form of a plan — the first cache level's key.

    Rewrites applied (all semantics-preserving):

    * ``¬¬e → e`` (complement is an involution within a rank);
    * nested unions/intersections flatten, deduplicate, and sort their
      children into a stable order (both are ACI);
    * singleton unions/intersections collapse to their child;
    * identity projections (``coords == (0, …, n−1)``) vanish — only
      when a ``signature`` is supplied, since the child's rank must be
      derivable to recognize them.

    Two plans that normalize identically share a plan-cache entry and —
    combined with a database fingerprint — a result-cache entry.
    """
    if isinstance(plan, Complement):
        child = normalize(plan.child, signature)
        if isinstance(child, Complement):
            return child.child
        return Complement(child)
    if isinstance(plan, (Union, Intersect)):
        cls = type(plan)
        flat: list[Plan] = []
        for c in plan.children:
            c = normalize(c, signature)
            if isinstance(c, cls):
                flat.extend(c.children)
            else:
                flat.append(c)
        unique = sorted(set(flat), key=_node_key)
        if len(unique) == 1:
            return unique[0]
        return cls(tuple(unique))
    if isinstance(plan, FilterEq):
        i, j = sorted((plan.i, plan.j)) if (
            (plan.i >= 0) == (plan.j >= 0)) else (plan.i, plan.j)
        return FilterEq(normalize(plan.child, signature), i, j)
    if isinstance(plan, FilterAtom):
        return FilterAtom(normalize(plan.child, signature), plan.index,
                          plan.positions, plan.negate)
    if isinstance(plan, Project):
        child = normalize(plan.child, signature)
        if signature is not None:
            try:
                n_child = plan_rank(child, signature)
            except (RankMismatchError, TypeSignatureError, TypeError):
                n_child = None
            if n_child is not None and plan.coords == tuple(range(n_child)):
                return child
        return Project(child, plan.coords)
    if isinstance(plan, Extend):
        return Extend(normalize(plan.child, signature))
    if isinstance(plan, Join):
        return Join(normalize(plan.left, signature),
                    normalize(plan.right, signature))
    if isinstance(plan, Quantify):
        return Quantify(normalize(plan.child, signature), plan.kind)
    # Leaves and opaque fixpoints are already canonical.
    return plan


def plan_size(plan: Plan) -> int:
    """Number of nodes — for stats and tests."""
    if isinstance(plan, (Scan, FullScan, Empty, Fixpoint, MachineFixpoint,
                         FcfFixpoint)):
        return 1
    if isinstance(plan, (Union, Intersect)):
        return 1 + sum(plan_size(c) for c in plan.children)
    if isinstance(plan, Join):
        return 1 + plan_size(plan.left) + plan_size(plan.right)
    return 1 + plan_size(plan.child)  # type: ignore[attr-defined]
