"""The engine executor: cached, batched, optionally parallel evaluation.

:class:`Engine` wraps one database (an hs-r-db or an fcf-r-db) and
evaluates plan-IR trees against it:

* every ``evaluate`` first normalizes the plan through the plan cache,
  then consults the result cache under
  ``(database fingerprint, plan, args)`` — so a warm re-evaluation is
  two dictionary probes, however expensive the cold run was;
* sub-plans are cached too: two different queries sharing a subtree
  (the *Complete Approximations* motivation — many related queries, one
  database) pay for the shared work once;
* ``batch_contains`` answers many membership questions in one pass over
  one evaluated plan, with an optional :class:`~concurrent.futures.
  ThreadPoolExecutor` path for the embarrassingly parallel per-tuple
  tests and a deterministic sequential fallback producing bit-for-bit
  identical answers (the parallel path preserves request order via
  ``Executor.map``);
* all work is metered in :class:`~repro.engine.stats.EngineStats`:
  oracle (``≅_B``) questions, cache traffic, per-node timings, wall
  time.

Results are immutable (:class:`~repro.qlhs.interpreter.Value` for path
sets, :class:`~repro.fcf.relation.FcfValue` for fcf plans, ``bool`` for
tests), so cache sharing never aliases mutable state.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Sequence
from concurrent.futures import ThreadPoolExecutor

from ..errors import RankMismatchError, RepresentationError, TypeSignatureError
from ..fcf.database import FcfDatabase
from ..fcf.qlf import QLfInterpreter
from ..fcf.relation import FcfValue
from ..qlhs.interpreter import QLhsInterpreter, Value
from ..symmetric.hsdb import HSDatabase
from .cache import EngineCache, ResultCache
from .fingerprint import fingerprint
from .plan import (
    EXISTS,
    Complement,
    Extend,
    FcfFixpoint,
    FilterAtom,
    FilterEq,
    Fixpoint,
    FullScan,
    Intersect,
    Join,
    MachineFixpoint,
    Plan,
    Project,
    Quantify,
    Scan,
    Union,
)
from .stats import MutableEngineStats, Timer


class Engine:
    """Unified query-evaluation engine over one database.

    Parameters
    ----------
    db:
        An :class:`~repro.symmetric.hsdb.HSDatabase` (executes the full
        algebraic IR plus QLhs/GMhs fixpoints) or an
        :class:`~repro.fcf.database.FcfDatabase` (executes
        :class:`~repro.engine.plan.FcfFixpoint` plans).
    cache:
        An :class:`~repro.engine.cache.EngineCache`; pass a shared
        instance to pool warm results across engines over
        fingerprint-equal databases.  A private cache is created when
        omitted.
    fuel:
        Step budget handed to the QLhs / QLf+ interpreters for fixpoint
        nodes.
    max_workers:
        Default thread count for the parallel batch path (``None``
        delegates to :class:`ThreadPoolExecutor`'s default).
    """

    def __init__(self, db: HSDatabase | FcfDatabase, *,
                 cache: EngineCache | None = None,
                 fuel: int = 10_000_000,
                 max_workers: int | None = None):
        if not isinstance(db, (HSDatabase, FcfDatabase)):
            raise TypeSignatureError(
                f"Engine needs an HSDatabase or FcfDatabase, got "
                f"{type(db).__name__}")
        self.db = db
        self.cache = cache if cache is not None else EngineCache()
        self.fuel = fuel
        self.max_workers = max_workers
        self.fingerprint = fingerprint(db)
        self._stats = MutableEngineStats()
        # Exclusive-time bookkeeping for per-node timings.
        self._child_time: list[float] = []

    # -- properties ---------------------------------------------------------

    @property
    def is_hs(self) -> bool:
        return isinstance(self.db, HSDatabase)

    @property
    def signature(self) -> tuple[int, ...]:
        if self.is_hs:
            return self.db.signature
        return self.db.type_signature

    # -- the public evaluation surface --------------------------------------

    def prepare(self, plan: Plan) -> Plan:
        """Normalize through the plan cache (level 1)."""
        return self.cache.plans.normalized(plan, self.signature)

    def evaluate(self, plan: Plan) -> Value | FcfValue:
        """Evaluate a plan to its denoted relation (cached)."""
        with Timer() as t:
            before = self._oracle_calls()
            prepared = self.prepare(plan)
            result = self._arg(prepared)
            self._stats.oracle_questions += self._oracle_calls() - before
            self._stats.evaluations += 1
        self._stats.wall_time += t.seconds
        return result

    def holds(self, plan: Plan) -> bool:
        """Truth of a rank-0 plan (nonemptiness in general)."""
        value = self.evaluate(plan)
        if isinstance(value, FcfValue):
            return value.contains(()) if value.rank == 0 else bool(
                value.tuples or value.cofinite)
        return not value.is_empty

    def contains(self, plan: Plan, u: Sequence) -> bool:
        """One membership test: is ``u`` in the plan's relation?"""
        return self.batch_contains(plan, [tuple(u)])[0]

    def batch_contains(self, plan: Plan, tuples: Iterable[Sequence],
                       parallel: bool = False,
                       max_workers: int | None = None) -> list[bool]:
        """Answer many membership questions against one plan, in order.

        The plan is evaluated once (warm: a cache probe); each tuple
        then gets an independent test — canonicalize, probe the result —
        which is embarrassingly parallel.  ``parallel=True`` fans the
        *uncached* tests out over a thread pool; answers are reassembled
        in request order, so the two paths agree bit for bit (the E15
        benchmark asserts it).  Per-tuple answers are result-cached
        under ``(fingerprint, plan, ("contains", u))``.
        """
        requests = [tuple(u) for u in tuples]
        with Timer() as t:
            before = self._oracle_calls()
            prepared = self.prepare(plan)
            value = self._arg(prepared)

            answers: list[bool | None] = [None] * len(requests)
            pending: list[int] = []
            results_cache = self.cache.results
            missing = object()
            for pos, u in enumerate(requests):
                key = ResultCache.key(self.fingerprint, prepared,
                                      ("contains", u))
                hit = results_cache.get(key, missing)
                if hit is missing:
                    pending.append(pos)
                else:
                    answers[pos] = hit

            if parallel and len(pending) > 1:
                workers = max_workers or self.max_workers
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    computed = list(pool.map(
                        lambda pos: self._member(value, requests[pos]),
                        pending))
            else:
                computed = [self._member(value, requests[pos])
                            for pos in pending]

            for pos, answer in zip(pending, computed):
                key = ResultCache.key(self.fingerprint, prepared,
                                      ("contains", requests[pos]))
                results_cache.put(key, answer)
                answers[pos] = answer

            self._stats.oracle_questions += self._oracle_calls() - before
            self._stats.batch_requests += len(requests)
        self._stats.wall_time += t.seconds
        return answers  # type: ignore[return-value]

    def batch_evaluate(self, plans: Sequence[Plan]) -> list:
        """Evaluate several plans (shared sub-plans are computed once)."""
        return [self.evaluate(p) for p in plans]

    # -- stats --------------------------------------------------------------

    def stats(self):
        """An immutable :class:`~repro.engine.stats.EngineStats` snapshot."""
        return self._stats.snapshot(self.cache.plans.stats(),
                                    self.cache.results.stats())

    def reset_stats(self) -> None:
        self._stats.reset()

    # -- internals ----------------------------------------------------------

    def _oracle_calls(self) -> int:
        return self.db.equiv.calls if self.is_hs else 0

    def _execute(self, plan: Plan) -> Value | FcfValue:
        """Execute one node (children through the cache), timed."""
        start = time.perf_counter()
        self._child_time.append(0.0)
        try:
            value = self._execute_node(plan)
        finally:
            child_seconds = self._child_time.pop()
            total = time.perf_counter() - start
            if self._child_time:
                self._child_time[-1] += total
            self._stats.record_node(type(plan).__name__,
                                    max(total - child_seconds, 0.0))
        return value

    def _arg(self, plan: Plan) -> Value:
        """A (sub-)plan's value, via the result cache (level 2).

        Used for the root and every child alike, so any two queries
        sharing a normalized subtree share its computed value.
        """
        key = ResultCache.key(self.fingerprint, plan, ())
        missing = object()
        hit = self.cache.results.get(key, missing)
        if hit is not missing:
            return hit
        value = self._execute(plan)
        self.cache.results.put(key, value)
        return value

    def _execute_node(self, plan: Plan) -> Value | FcfValue:
        if isinstance(plan, FcfFixpoint):
            if self.is_hs:
                raise TypeSignatureError(
                    "FcfFixpoint plans need an Engine over an "
                    "FcfDatabase")
            interp = QLfInterpreter(self.db, fuel=self.fuel)
            return interp.result(plan.program)
        if not self.is_hs:
            raise TypeSignatureError(
                f"an Engine over an FcfDatabase executes only "
                f"FcfFixpoint plans, not {type(plan).__name__}")

        hsdb: HSDatabase = self.db
        if isinstance(plan, Scan):
            if not 0 <= plan.index < hsdb.k:
                raise TypeSignatureError(
                    f"Scan({plan.index}) out of range for type "
                    f"{hsdb.signature}")
            return Value(hsdb.signature[plan.index],
                         hsdb.representatives[plan.index])
        if isinstance(plan, FullScan):
            return Value(plan.rank, frozenset(hsdb.tree.level(plan.rank)))
        if isinstance(plan, FilterEq):
            body = self._arg(plan.child)
            i = plan.i if plan.i >= 0 else body.rank + plan.i
            j = plan.j if plan.j >= 0 else body.rank + plan.j
            if not (0 <= i < body.rank and 0 <= j < body.rank):
                raise RankMismatchError(
                    f"FilterEq({plan.i}, {plan.j}) out of range for "
                    f"rank {body.rank}")
            return Value(body.rank, frozenset(
                p for p in body.paths if p[i] == p[j]))
        if isinstance(plan, FilterAtom):
            body = self._arg(plan.child)
            if any(not 0 <= c < body.rank for c in plan.positions):
                raise RankMismatchError(
                    f"FilterAtom positions {plan.positions} out of "
                    f"range for rank {body.rank}")
            out = frozenset(
                p for p in body.paths
                if hsdb.contains(
                    plan.index,
                    tuple(p[c] for c in plan.positions)) != plan.negate)
            return Value(body.rank, out)
        if isinstance(plan, Project):
            body = self._arg(plan.child)
            if any(not 0 <= c < body.rank for c in plan.coords):
                raise RankMismatchError(
                    f"Project coords {plan.coords} out of range for "
                    f"rank {body.rank}")
            out = frozenset(
                hsdb.canonical_representative(
                    tuple(p[c] for c in plan.coords))
                for p in body.paths)
            return Value(len(plan.coords), out)
        if isinstance(plan, Extend):
            body = self._arg(plan.child)
            out = frozenset(
                p + (a,) for p in body.paths
                for a in hsdb.tree.children(p))
            return Value(body.rank + 1, out)
        if isinstance(plan, Join):
            left = self._arg(plan.left)
            right = self._arg(plan.right)
            m, n = left.rank, right.rank
            out = set()
            for r in hsdb.tree.level(m + n):
                head = hsdb.canonical_representative(r[:m]) if m else ()
                tail = hsdb.canonical_representative(r[m:]) if n else ()
                if head in left.paths and tail in right.paths:
                    out.add(r)
            return Value(m + n, frozenset(out))
        if isinstance(plan, Quantify):
            body = self._arg(plan.child)
            if body.rank == 0:
                raise RankMismatchError("Quantify needs rank >= 1")
            rank = body.rank - 1
            if plan.kind == EXISTS:
                # Paths of T^{n+1} are p+(a,) for p ∈ Tⁿ: dropping the
                # last label is exactly relativized ∃ (Theorem 6.3).
                return Value(rank, frozenset(
                    p[:-1] for p in body.paths))
            out = frozenset(
                p for p in hsdb.tree.level(rank)
                if all(p + (a,) in body.paths
                       for a in hsdb.tree.children(p)))
            return Value(rank, out)
        if isinstance(plan, Union):
            parts = [self._arg(c) for c in plan.children]
            rank = self._common_rank(parts, "Union")
            out = frozenset().union(*(v.paths for v in parts))
            return Value(rank, out)
        if isinstance(plan, Intersect):
            parts = [self._arg(c) for c in plan.children]
            rank = self._common_rank(parts, "Intersect")
            paths = set(parts[0].paths)
            for v in parts[1:]:
                paths &= v.paths
            return Value(rank, frozenset(paths))
        if isinstance(plan, Complement):
            body = self._arg(plan.child)
            level = frozenset(hsdb.tree.level(body.rank))
            return Value(body.rank, level - body.paths)
        if isinstance(plan, Fixpoint):
            interp = QLhsInterpreter(hsdb, fuel=self.fuel)
            return interp.run(plan.program, result_var=plan.result_var)
        if isinstance(plan, MachineFixpoint):
            from ..machines.gmhs_pipeline import run_query_gmhs
            value, __ = run_query_gmhs(
                hsdb, plan.procedure,
                search_window=plan.search_window, fuel=plan.fuel)
            return value
        raise TypeError(f"unknown plan node {plan!r}")

    @staticmethod
    def _common_rank(parts: Sequence[Value], what: str) -> int:
        if not parts:
            raise RankMismatchError(f"{what} needs at least one child")
        ranks = {v.rank for v in parts}
        if len(ranks) != 1:
            raise RankMismatchError(
                f"{what} over mixed ranks {sorted(ranks)}")
        return ranks.pop()

    def _member(self, value: Value | FcfValue, u: tuple) -> bool:
        """One membership test against an evaluated plan."""
        if isinstance(value, FcfValue):
            return value.contains(u)
        if len(u) != value.rank:
            return False
        hsdb: HSDatabase = self.db
        try:
            return hsdb.canonical_representative(u) in value.paths
        except RepresentationError:
            # Not covered by the tree (foreign elements): not a member.
            return False

    def __repr__(self) -> str:
        name = getattr(self.db, "name", "?")
        return (f"Engine({name}, fingerprint={self.fingerprint[:12]}…, "
                f"results={len(self.cache.results)})")
