"""The engine executor: cached, batched, optionally parallel evaluation.

:class:`Engine` wraps one database (an hs-r-db or an fcf-r-db) and
evaluates plan-IR trees against it:

* every ``evaluate`` first *prepares* the plan through the plan cache —
  normalization plus, by default, the algebraic rewrites of
  :mod:`repro.engine.optimize` (``optimize=False`` restores the naive
  lowering) — then consults the result cache under
  ``(database fingerprint, plan, args)``, so a warm re-evaluation is
  two dictionary probes, however expensive the cold run was;
* cold runs execute, by default, through the compiled-closure backend
  of :mod:`repro.engine.compile` (``compiled=False`` falls back to the
  tree-walking interpreter); both backends produce bit-for-bit equal
  values, share the same result-cache entries, and report the same
  per-node timings — the ``repro.check`` *optimizer* oracle fuzzes the
  three-way agreement;
* sub-plans are cached too: two different queries sharing a subtree
  (the *Complete Approximations* motivation — many related queries, one
  database) pay for the shared work once;
* ``batch_contains`` answers many membership questions in one pass over
  one evaluated plan, with an optional :class:`~concurrent.futures.
  ThreadPoolExecutor` path for the embarrassingly parallel per-tuple
  tests and a deterministic sequential fallback producing bit-for-bit
  identical answers (the parallel path preserves request order via
  ``Executor.map``);
* all work is metered in :class:`~repro.engine.stats.EngineStats`:
  oracle (``≅_B``) questions, cache traffic, per-node timings, wall
  time, and three-valued verdict counts;
* every evaluation runs under a :class:`~repro.trace.Budget` (steps,
  oracle questions, wall-clock deadline, cooperative cancellation) and
  inside a hierarchical :func:`~repro.trace.span`, so ``--trace``
  output shows where time, steps, and oracle questions went;
* :meth:`Engine.eval` / :meth:`Engine.eval_batch` implement the
  documented divergence contract: a tripped budget never leaks
  :class:`~repro.errors.OutOfFuel` but returns a
  :class:`~repro.engine.verdict.Verdict` with status ``UNKNOWN`` and a
  machine-readable reason (``out_of_fuel`` / ``deadline`` /
  ``cancelled``).

Results are immutable (:class:`~repro.qlhs.interpreter.Value` for path
sets, :class:`~repro.fcf.relation.FcfValue` for fcf plans, ``bool`` for
tests), so cache sharing never aliases mutable state.

Concurrency contract (``docs/concurrency.md``): one :class:`Engine`
may be shared between threads.  The budget governing the evaluation in
flight lives in a :class:`~contextvars.ContextVar` (not instance
state), so two threads evaluating through one engine never cross their
step budgets or deadlines; per-node timing bookkeeping is thread-local;
the caches, stats tables, and :class:`~repro.trace.Budget` charging are
individually thread-safe.  The parallel batch path propagates both the
active budget and the enclosing trace span into its pool workers, so
``--trace`` trees keep their ``engine.batch_contains`` parent and a
:meth:`Engine.cancel` from any thread interrupts a batch mid-flight.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterable, Sequence
from concurrent.futures import ThreadPoolExecutor
from contextvars import ContextVar

from ..errors import (
    OutOfFuel,
    RankMismatchError,
    RepresentationError,
    TypeSignatureError,
)
from ..fcf.database import FcfDatabase
from ..fcf.qlf import QLfInterpreter
from ..fcf.relation import FcfValue
from ..qlhs.interpreter import QLhsInterpreter, Value
from ..symmetric.hsdb import HSDatabase
from ..trace import Budget, limits, span
from ..trace.budget import as_budget
from ..trace.spans import current_span, under_span
from .cache import EngineCache, ResultCache
from .compile import compile_plan
from .fingerprint import fingerprint
from .optimize import common_subplans
from .plan import (
    EXISTS,
    Complement,
    Empty,
    Extend,
    FcfFixpoint,
    FilterAtom,
    FilterEq,
    Fixpoint,
    FullScan,
    Intersect,
    Join,
    MachineFixpoint,
    Plan,
    Project,
    Quantify,
    Scan,
    Union,
)
from .stats import MutableEngineStats, Timer
from .verdict import Verdict

#: The budget governing the evaluation currently in flight, scoped per
#: context (and therefore per thread): two threads evaluating through
#: one shared engine each see their own budget, never each other's —
#: the instance-attribute version of this state was the engine's
#: re-entrancy bug.  ``None`` outside any evaluation.
_ACTIVE_BUDGET: ContextVar[Budget | None] = ContextVar(
    "repro_engine_active_budget", default=None)

#: The batch in flight's common-subplan set (:func:`repro.engine.
#: optimize.common_subplans` over the prepared members), scoped per
#: context like the budget.  The compiled backend refuses to fuse
#: through these nodes, keeping a result-cache boundary at every
#: subtree the batch shares.  Empty outside any batch.
_BATCH_SHARED: ContextVar[frozenset] = ContextVar(
    "repro_engine_batch_shared", default=frozenset())

#: Cap on per-engine memoized compiled plans; on overflow the memo is
#: simply dropped (recompilation is milliseconds, correctness is
#: unaffected).
_COMPILED_MEMO_MAX = 1024


class Engine:
    """Unified query-evaluation engine over one database.

    Parameters
    ----------
    db:
        An :class:`~repro.symmetric.hsdb.HSDatabase` (executes the full
        algebraic IR plus QLhs/GMhs fixpoints) or an
        :class:`~repro.fcf.database.FcfDatabase` (executes
        :class:`~repro.engine.plan.FcfFixpoint` plans).
    cache:
        An :class:`~repro.engine.cache.EngineCache`; pass a shared
        instance to pool warm results across engines over
        fingerprint-equal databases.  A private cache is created when
        omitted.
    budget:
        The engine's :class:`~repro.trace.Budget` template (or an int
        shorthand for ``Budget(max_steps=...)``).  Every evaluation
        :meth:`forks <repro.trace.Budget.fork>` it, so each call gets
        the full per-evaluation step allowance while sharing the
        deadline and the cancellation flag.  Default:
        :data:`repro.trace.limits.ENGINE` steps, no deadline.
    fuel:
        Deprecated alias: ``fuel=N`` means ``budget=Budget(max_steps=N)``.
    max_workers:
        Default thread count for the parallel batch path (``None``
        delegates to :class:`ThreadPoolExecutor`'s default).
    optimize:
        Run the :mod:`repro.engine.optimize` rewrite rules during plan
        preparation (default on; only applies to hs engines).
        ``optimize=False`` is the escape hatch that executes exactly
        the frontend's naive lowering.
    compiled:
        Execute cold plans through the :mod:`repro.engine.compile`
        closure backend (default on; only applies to hs engines).
        ``compiled=False`` restores the tree-walking interpreter —
        same values, same cache entries, more per-node overhead.
    """

    def __init__(self, db: HSDatabase | FcfDatabase, *,
                 cache: EngineCache | None = None,
                 budget: Budget | int | None = None,
                 fuel: int | None = None,
                 max_workers: int | None = None,
                 optimize: bool = True,
                 compiled: bool = True):
        if not isinstance(db, (HSDatabase, FcfDatabase)):
            raise TypeSignatureError(
                f"Engine needs an HSDatabase or FcfDatabase, got "
                f"{type(db).__name__}")
        self.db = db
        self.cache = cache if cache is not None else EngineCache()
        self.budget = as_budget(budget, fuel, default_steps=limits.ENGINE)
        self.max_workers = max_workers
        self.optimize = optimize
        self.compiled = compiled
        self.fingerprint = fingerprint(db)
        self._stats = MutableEngineStats()
        self._compiled_memo: dict = {}
        self._compiled_lock = threading.Lock()
        self._shard_pools: dict = {}
        self._shard_lock = threading.Lock()
        # Exclusive-time bookkeeping for per-node timings, kept
        # per-thread so concurrent evaluations through one shared
        # engine never corrupt each other's stacks.
        self._timing = threading.local()

    # -- properties ---------------------------------------------------------

    @property
    def fuel(self) -> int | None:
        """Deprecated alias for ``budget.max_steps``."""
        return self.budget.max_steps

    @property
    def is_hs(self) -> bool:
        """Whether the engine wraps an hs-r-db (vs. an fcf-r-db)."""
        return isinstance(self.db, HSDatabase)

    @property
    def signature(self) -> tuple[int, ...]:
        """The database's type signature (relation ranks)."""
        if self.is_hs:
            return self.db.signature
        return self.db.type_signature

    # -- the public evaluation surface --------------------------------------

    def prepare(self, plan: Plan) -> Plan:
        """Normalize (and by default optimize) through the plan cache.

        Idempotent, so preparing an already-prepared plan is a warm
        memo hit; the result cache is keyed on *this* form, which is
        what lets differently-written but rewrite-equal plans share
        one entry.
        """
        return self.cache.plans.prepared(
            plan, self.signature,
            optimize=self.optimize and self.is_hs)

    def evaluate(self, plan: Plan, *,
                 budget: Budget | None = None) -> Value | FcfValue:
        """Evaluate a plan to its denoted relation (cached).

        Runs under ``budget`` (default: a fresh
        :meth:`~repro.trace.Budget.fork` of the engine budget).  A
        tripped budget raises :class:`~repro.errors.OutOfFuel` — use
        :meth:`eval` for the three-valued surface that never raises.
        """
        run = budget if budget is not None else self.budget.fork()
        token = _ACTIVE_BUDGET.set(run)
        timer = Timer()
        try:
            with span("engine.evaluate") as sp, timer:
                before = self._oracle_calls()
                try:
                    prepared = self.prepare(plan)
                    result = self._arg(prepared)
                finally:
                    asked = self._oracle_calls() - before
                    self._stats.add(oracle_questions=asked,
                                    evaluations=1)
                    sp.count("oracle_questions", asked)
                    sp.count("steps", run.steps)
            return result
        finally:
            _ACTIVE_BUDGET.reset(token)
            self._stats.add(wall_time=timer.seconds)

    def holds(self, plan: Plan) -> bool:
        """Truth of a rank-0 plan (nonemptiness in general)."""
        return self._truth(self.evaluate(plan))

    def eval(self, plan: Plan, *,
             budget: Budget | int | None = None) -> Verdict:
        """Evaluate under the three-valued divergence contract.

        Unlike :meth:`evaluate`, a tripped :class:`~repro.trace.Budget`
        never escapes: the answer is always a
        :class:`~repro.engine.verdict.Verdict` —

        * ``TRUE`` / ``FALSE`` with :attr:`~repro.engine.verdict.
          Verdict.value` holding the evaluated relation (truth is
          nonemptiness, i.e. :meth:`holds`), or
        * ``UNKNOWN`` with the machine-readable reason
          (``out_of_fuel`` / ``deadline`` / ``cancelled``) and the step
          count reached.

        ``budget`` overrides the per-evaluation budget (an int is
        shorthand for ``Budget(max_steps=...)``); by default the engine
        budget is forked, so every ``eval`` gets the full step
        allowance while sharing the deadline and cancellation flag.
        """
        if budget is None:
            run = self.budget.fork()
        else:
            run = as_budget(budget)
        with span("engine.eval") as sp:
            try:
                value = self.evaluate(plan, budget=run)
            except OutOfFuel as exc:
                verdict = Verdict.unknown(
                    exc.reason,
                    steps=exc.steps if exc.steps is not None
                    else run.steps)
                self._stats.record_verdict(verdict.status, verdict.reason)
                sp.set(verdict=verdict.status, reason=verdict.reason)
                return verdict
            verdict = Verdict.of(self._truth(value), value=value)
            self._stats.record_verdict(verdict.status)
            sp.set(verdict=verdict.status)
            return verdict

    def eval_batch(self, plans: Sequence[Plan], *,
                   workers: int | None = None) -> list[Verdict]:
        """:meth:`eval` several plans; one diverging member cannot
        starve the rest.

        Each member runs under its own :meth:`~repro.trace.Budget.fork`
        of the engine budget (fresh step counter, shared deadline and
        cancellation flag), so a member that trips its step budget
        yields ``UNKNOWN`` while the others still complete.

        ``workers=N`` (N > 1) ships the batch across a process pool
        (:class:`~repro.engine.shard.ShardExecutor`) — same verdicts,
        same request order, multiple cores.  Databases with no
        shippable spec fall back to this in-process path, and members
        whose plans cannot serialize
        (:class:`~repro.engine.plan.MachineFixpoint`) are evaluated
        locally while their batch-mates fan out; see
        ``docs/sharding.md``.
        """
        plans = list(plans)
        if workers is not None and workers > 1 and len(plans) > 1:
            from .shard import UnshardableDatabaseError
            try:
                return self._shards(workers).eval_batch(self, plans)
            except UnshardableDatabaseError:
                pass  # no shippable spec: evaluate in-process below
        with span("engine.eval_batch", size=len(plans)):
            prepared = [self.prepare(p) for p in plans]
            token = _BATCH_SHARED.set(common_subplans(prepared))
            try:
                return [self.eval(p) for p in prepared]
            finally:
                _BATCH_SHARED.reset(token)

    def cancel(self) -> None:
        """Cooperatively cancel evaluations governed by this engine.

        Sets the engine budget's shared cancellation flag: every
        in-flight (and future) forked budget trips on its next charge
        with reason ``cancelled``, which :meth:`eval` reports as an
        ``UNKNOWN`` verdict.  Construct a fresh engine (or a fresh
        :class:`~repro.trace.Budget`) to evaluate again.
        """
        self.budget.cancel()

    def contains(self, plan: Plan, u: Sequence) -> bool:
        """One membership test: is ``u`` in the plan's relation?"""
        return self.batch_contains(plan, [tuple(u)])[0]

    def batch_contains(self, plan: Plan, tuples: Iterable[Sequence],
                       parallel: bool = False,
                       max_workers: int | None = None, *,
                       workers: int | None = None,
                       budget: Budget | None = None) -> list[bool]:
        """Answer many membership questions against one plan, in order.

        The plan is evaluated once (warm: a cache probe); each tuple
        then gets an independent test — canonicalize, probe the result —
        which is embarrassingly parallel.  ``parallel=True`` fans the
        *uncached* tests out over a thread pool; answers are reassembled
        in request order, so the two paths agree bit for bit (the E15
        benchmark asserts it).  Per-tuple answers are result-cached
        under ``(fingerprint, plan, ("contains", u))``.

        The whole batch runs under one :meth:`~repro.trace.Budget.fork`
        of the engine budget, *shared* by every pool worker (the fork's
        charging is atomic, so the workers cannot jointly overrun it),
        and the budget is checked before every membership test — a
        :meth:`cancel` from another thread or an expired deadline
        interrupts the batch mid-flight with
        :class:`~repro.errors.OutOfFuel` (reason ``cancelled`` /
        ``deadline``), mirroring :meth:`evaluate`'s raising contract.
        ``budget`` substitutes an explicit batch budget for that fork
        (used directly, not forked — the sharded executor's workers
        govern their slice of a shipped batch with it).

        ``workers=N`` (N > 1) shards the uncached tests across a
        process pool instead of threads — genuine multi-core
        parallelism with bit-for-bit the same answers, written back
        into the same result-cache keys.  Unshardable databases and
        unserializable plans fall back to the in-process paths below
        (``docs/sharding.md``).
        """
        requests = [tuple(u) for u in tuples]
        if workers is not None and workers > 1 and len(requests) > 1:
            from ..store.codec import UnserializablePlanError
            from .shard import UnshardableDatabaseError
            try:
                return self._shards(workers).batch_contains(
                    self, plan, requests, budget=budget)
            except (UnshardableDatabaseError, UnserializablePlanError):
                pass  # fall through to the in-process paths
        run = budget if budget is not None else self.budget.fork()
        token = _ACTIVE_BUDGET.set(run)
        try:
            return self._batch_contains(plan, requests, parallel,
                                        max_workers, run)
        finally:
            _ACTIVE_BUDGET.reset(token)

    def _batch_contains(self, plan: Plan, requests: list[tuple],
                        parallel: bool, max_workers: int | None,
                        run: Budget) -> list[bool]:
        """The :meth:`batch_contains` body (active budget installed)."""
        with span("engine.batch_contains",
                  requests=len(requests)) as sp, Timer() as t:
            before = self._oracle_calls()
            prepared = self.prepare(plan)
            value = self._arg(prepared)

            answers: list[bool | None] = [None] * len(requests)
            pending: list[int] = []
            results_cache = self.cache.results
            missing = object()
            for pos, u in enumerate(requests):
                key = ResultCache.key(self.fingerprint, prepared,
                                      ("contains", u))
                hit = results_cache.get(key, missing)
                if hit is missing:
                    pending.append(pos)
                else:
                    answers[pos] = hit

            if parallel and len(pending) > 1:
                # Capture the enclosing span and the batch budget for
                # the workers: pool threads start fresh span stacks and
                # empty budget contexts, so without explicit
                # propagation their spans would surface as orphan roots
                # and their work would escape the batch budget.
                parent = current_span()  # no-op span when not recording

                def member_task(pos: int) -> bool:
                    worker_token = _ACTIVE_BUDGET.set(run)
                    try:
                        with under_span(parent):
                            with span("engine.member"):
                                run.check()
                                return self._member(value, requests[pos])
                    finally:
                        _ACTIVE_BUDGET.reset(worker_token)

                workers = max_workers or self.max_workers
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    computed = list(pool.map(member_task, pending))
            else:
                computed = []
                for pos in pending:
                    run.check()
                    computed.append(self._member(value, requests[pos]))

            for pos, answer in zip(pending, computed):
                key = ResultCache.key(self.fingerprint, prepared,
                                      ("contains", requests[pos]))
                results_cache.put(key, answer)
                answers[pos] = answer

            asked = self._oracle_calls() - before
            self._stats.add(oracle_questions=asked,
                            batch_requests=len(requests))
            sp.count("oracle_questions", asked)
        self._stats.add(wall_time=t.seconds)
        return answers  # type: ignore[return-value]

    def batch_evaluate(self, plans: Sequence[Plan]) -> list:
        """Evaluate several plans (shared sub-plans are computed once).

        Like :meth:`eval_batch`, the members' common subplans are
        pinned as compiled-path boundaries so the sharing survives
        closure fusion.
        """
        prepared = [self.prepare(p) for p in plans]
        token = _BATCH_SHARED.set(common_subplans(prepared))
        try:
            return [self.evaluate(p) for p in prepared]
        finally:
            _BATCH_SHARED.reset(token)

    # -- stats --------------------------------------------------------------

    def stats(self):
        """An immutable :class:`~repro.engine.stats.EngineStats` snapshot.

        Thread-safe; note that ``oracle_questions`` is attributed per
        evaluation by before/after deltas on the database's shared
        oracle counter, so when several threads evaluate through one
        engine concurrently the per-engine total can double-count
        overlapping windows — the database-level
        ``db.equiv.calls`` counter itself stays exact
        (``docs/concurrency.md``).
        """
        optimizations, rewrites = self.cache.plans.optimizer_stats()
        return self._stats.snapshot(self.cache.plans.stats(),
                                    self.cache.results.stats(),
                                    optimizations=optimizations,
                                    rewrites=rewrites)

    def reset_stats(self) -> None:
        """Zero the engine's live counters (caches keep their contents)."""
        self._stats.reset()

    # -- process pools -------------------------------------------------------

    def _shards(self, workers: int):
        """The memoized :class:`~repro.engine.shard.ShardExecutor` for
        one worker count (pools are expensive; reuse keeps worker
        caches warm across batches)."""
        from .shard import ShardExecutor
        with self._shard_lock:
            executor = self._shard_pools.get(workers)
            if executor is None:
                executor = ShardExecutor(workers)
                self._shard_pools[workers] = executor
            return executor

    def close(self) -> None:
        """Release any worker-process pools this engine started.

        Idempotent and safe on engines that never sharded (a no-op
        then); the engine itself stays usable — a later ``workers=N``
        call simply starts a fresh pool.
        """
        with self._shard_lock:
            pools = list(self._shard_pools.values())
            self._shard_pools = {}
        for executor in pools:
            executor.close()

    # -- internals ----------------------------------------------------------

    def _oracle_calls(self) -> int:
        """Cumulative ``≅_B`` oracle questions the database has answered."""
        return self.db.equiv.calls if self.is_hs else 0

    def _node_budget(self, max_steps: int | None = None) -> Budget:
        """The budget a fixpoint node runs under.

        The evaluation's active budget (a :class:`~contextvars.
        ContextVar`, so per-thread on a shared engine) governs
        directly; a plan-level ``max_steps`` knob (:class:`~repro.
        engine.plan.MachineFixpoint`) forks it so the node-local step
        cap applies while the deadline and cancellation flag stay
        shared.
        """
        base = _ACTIVE_BUDGET.get()
        if base is None:  # direct _execute_node use (tests, debugging)
            base = self.budget.fork()
        if max_steps is not None:
            return base.fork(max_steps=max_steps)
        return base

    @staticmethod
    def _truth(value: Value | FcfValue) -> bool:
        """Truth of an evaluated relation: nonemptiness (rank-0 fcf
        values test ``()``-membership, honouring co-finiteness)."""
        if isinstance(value, FcfValue):
            return value.contains(()) if value.rank == 0 else bool(
                value.tuples or value.cofinite)
        return not value.is_empty

    def _child_time(self) -> list[float]:
        """This thread's exclusive-time stack (lazily created).

        Per-thread because two threads evaluating through one shared
        engine would otherwise pop each other's frames and corrupt the
        per-node timings.
        """
        stack = getattr(self._timing, "stack", None)
        if stack is None:
            stack = []
            self._timing.stack = stack
        return stack

    def _execute(self, plan: Plan) -> Value | FcfValue:
        """Execute one node (children through the cache), timed."""
        child_time = self._child_time()
        start = time.perf_counter()
        child_time.append(0.0)
        try:
            value = self._execute_node(plan)
        finally:
            child_seconds = child_time.pop()
            total = time.perf_counter() - start
            if child_time:
                child_time[-1] += total
            self._stats.record_node(type(plan).__name__,
                                    max(total - child_seconds, 0.0))
        return value

    def _arg(self, plan: Plan) -> Value:
        """A (sub-)plan's value, via the result cache (level 2).

        Used for the root and every child alike (interpreted path) and
        for the root of a compiled run, so any two queries sharing a
        prepared subtree share its computed value — the compiled
        backend probes the same keys at its interior boundaries.
        """
        key = ResultCache.key(self.fingerprint, plan, ())
        missing = object()
        hit = self.cache.results.get(key, missing)
        if hit is not missing:
            return hit
        if self.compiled and self.is_hs:
            value = self._compiled_for(plan).run()
        else:
            value = self._execute(plan)
        self.cache.results.put(key, value)
        return value

    def _compiled_for(self, plan: Plan):
        """The memoized compiled form of a prepared plan.

        Keyed by ``(plan, batch shared set)`` because the shared set
        changes which nodes keep boundaries; compilation itself is
        pure, so a racing double-compile is wasted work, not a bug.
        """
        key = (plan, _BATCH_SHARED.get())
        with self._compiled_lock:
            compiled = self._compiled_memo.get(key)
        if compiled is None:
            compiled = compile_plan(self, plan, key[1])
            self._stats.add(compiles=1)
            with self._compiled_lock:
                if len(self._compiled_memo) >= _COMPILED_MEMO_MAX:
                    self._compiled_memo.clear()
                self._compiled_memo[key] = compiled
        return compiled

    def _execute_node(self, plan: Plan) -> Value | FcfValue:
        """Semantics of one plan node (dispatch on the node kind)."""
        if isinstance(plan, FcfFixpoint):
            if self.is_hs:
                raise TypeSignatureError(
                    "FcfFixpoint plans need an Engine over an "
                    "FcfDatabase")
            interp = QLfInterpreter(self.db, budget=self._node_budget())
            return interp.result(plan.program)
        if not self.is_hs:
            raise TypeSignatureError(
                f"an Engine over an FcfDatabase executes only "
                f"FcfFixpoint plans, not {type(plan).__name__}")

        hsdb: HSDatabase = self.db
        if isinstance(plan, Scan):
            if not 0 <= plan.index < hsdb.k:
                raise TypeSignatureError(
                    f"Scan({plan.index}) out of range for type "
                    f"{hsdb.signature}")
            return Value(hsdb.signature[plan.index],
                         hsdb.representatives[plan.index])
        if isinstance(plan, FullScan):
            return Value(plan.rank, frozenset(hsdb.tree.level(plan.rank)))
        if isinstance(plan, Empty):
            return Value(plan.rank, frozenset())
        if isinstance(plan, FilterEq):
            body = self._arg(plan.child)
            i = plan.i if plan.i >= 0 else body.rank + plan.i
            j = plan.j if plan.j >= 0 else body.rank + plan.j
            if not (0 <= i < body.rank and 0 <= j < body.rank):
                raise RankMismatchError(
                    f"FilterEq({plan.i}, {plan.j}) out of range for "
                    f"rank {body.rank}")
            return Value(body.rank, frozenset(
                p for p in body.paths if p[i] == p[j]))
        if isinstance(plan, FilterAtom):
            body = self._arg(plan.child)
            if any(not 0 <= c < body.rank for c in plan.positions):
                raise RankMismatchError(
                    f"FilterAtom positions {plan.positions} out of "
                    f"range for rank {body.rank}")
            out = frozenset(
                p for p in body.paths
                if hsdb.contains(
                    plan.index,
                    tuple(p[c] for c in plan.positions)) != plan.negate)
            return Value(body.rank, out)
        if isinstance(plan, Project):
            body = self._arg(plan.child)
            if any(not 0 <= c < body.rank for c in plan.coords):
                raise RankMismatchError(
                    f"Project coords {plan.coords} out of range for "
                    f"rank {body.rank}")
            out = frozenset(
                hsdb.canonical_representative(
                    tuple(p[c] for c in plan.coords))
                for p in body.paths)
            return Value(len(plan.coords), out)
        if isinstance(plan, Extend):
            body = self._arg(plan.child)
            out = frozenset(
                p + (a,) for p in body.paths
                for a in hsdb.tree.children(p))
            return Value(body.rank + 1, out)
        if isinstance(plan, Join):
            left = self._arg(plan.left)
            right = self._arg(plan.right)
            m, n = left.rank, right.rank
            out = set()
            for r in hsdb.tree.level(m + n):
                head = hsdb.canonical_representative(r[:m]) if m else ()
                tail = hsdb.canonical_representative(r[m:]) if n else ()
                if head in left.paths and tail in right.paths:
                    out.add(r)
            return Value(m + n, frozenset(out))
        if isinstance(plan, Quantify):
            body = self._arg(plan.child)
            if body.rank == 0:
                raise RankMismatchError("Quantify needs rank >= 1")
            rank = body.rank - 1
            if plan.kind == EXISTS:
                # Paths of T^{n+1} are p+(a,) for p ∈ Tⁿ: dropping the
                # last label is exactly relativized ∃ (Theorem 6.3).
                return Value(rank, frozenset(
                    p[:-1] for p in body.paths))
            out = frozenset(
                p for p in hsdb.tree.level(rank)
                if all(p + (a,) in body.paths
                       for a in hsdb.tree.children(p)))
            return Value(rank, out)
        if isinstance(plan, Union):
            parts = [self._arg(c) for c in plan.children]
            rank = self._common_rank(parts, "Union")
            out = frozenset().union(*(v.paths for v in parts))
            return Value(rank, out)
        if isinstance(plan, Intersect):
            parts = [self._arg(c) for c in plan.children]
            rank = self._common_rank(parts, "Intersect")
            paths = set(parts[0].paths)
            for v in parts[1:]:
                paths &= v.paths
            return Value(rank, frozenset(paths))
        if isinstance(plan, Complement):
            body = self._arg(plan.child)
            level = frozenset(hsdb.tree.level(body.rank))
            return Value(body.rank, level - body.paths)
        if isinstance(plan, Fixpoint):
            interp = QLhsInterpreter(hsdb, budget=self._node_budget())
            return interp.run(plan.program, result_var=plan.result_var)
        if isinstance(plan, MachineFixpoint):
            from ..machines.gmhs_pipeline import run_query_gmhs
            value, __ = run_query_gmhs(
                hsdb, plan.procedure,
                search_window=plan.search_window,
                budget=self._node_budget(max_steps=plan.max_steps))
            return value
        raise TypeError(f"unknown plan node {plan!r}")

    @staticmethod
    def _common_rank(parts: Sequence[Value], what: str) -> int:
        """The single rank shared by ``parts`` (raise on a mix)."""
        if not parts:
            raise RankMismatchError(f"{what} needs at least one child")
        ranks = {v.rank for v in parts}
        if len(ranks) != 1:
            raise RankMismatchError(
                f"{what} over mixed ranks {sorted(ranks)}")
        return ranks.pop()

    def _member(self, value: Value | FcfValue, u: tuple) -> bool:
        """One membership test against an evaluated plan."""
        if isinstance(value, FcfValue):
            return value.contains(u)
        if len(u) != value.rank:
            return False
        hsdb: HSDatabase = self.db
        try:
            return hsdb.canonical_representative(u) in value.paths
        except RepresentationError:
            # Not covered by the tree (foreign elements): not a member.
            return False

    def __repr__(self) -> str:
        """Short description with fingerprint prefix and cache size."""
        name = getattr(self.db, "name", "?")
        return (f"Engine({name}, fingerprint={self.fingerprint[:12]}…, "
                f"results={len(self.cache.results)})")
