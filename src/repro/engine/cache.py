"""The engine's two-level cache.

Level 1 — the **plan cache**: normalization (:func:`repro.engine.plan.
normalize`) is pure but walks the whole plan tree; it is memoized with
the kwargs-capable :func:`repro.util.memo.lru_cached`, so syntactically
repeated plans (every warm request) skip the rewrite entirely and two
differently written but ACI-equal plans converge on one key.

Level 2 — the **result cache**: finished answers keyed by
``(database fingerprint, normalized plan, args)``.  The fingerprint
(:mod:`repro.engine.fingerprint`) is what makes the entry safely
shareable across database *objects*: any two databases with the same
fingerprint agree on every generic query the engine computes, so a hit
is a correct answer regardless of which copy asked.  ``args`` carries
per-request parameters (e.g. the tuple of a membership test).

Both levels expose :class:`~repro.engine.stats.CacheStats` snapshots.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Hashable
from typing import Any

from ..util.memo import lru_cached
from .plan import Plan, normalize
from .stats import CacheStats


class PlanCache:
    """Memoized plan normalization (level 1)."""

    def __init__(self, maxsize: int = 4096):
        self._normalize = lru_cached(maxsize=maxsize)(
            lambda plan, signature=None: normalize(plan, signature))

    def normalized(self, plan: Plan,
                   signature: tuple[int, ...] | None = None) -> Plan:
        """The normalized form of ``plan`` (memoized)."""
        return self._normalize(plan, signature=signature)

    def stats(self) -> CacheStats:
        """A :class:`CacheStats` snapshot of the normalization memo."""
        fn = self._normalize
        return CacheStats(hits=fn.hits, misses=fn.misses,
                          evictions=fn.evictions, size=len(fn.cache))

    def clear(self) -> None:
        """Drop every memoized normalization (counters reset too)."""
        self._normalize.cache_clear()


class ResultCache:
    """Bounded LRU of finished answers (level 2).

    Keys are ``(fingerprint, plan, args)`` triples; values are whatever
    the executor produced (path frozensets, booleans, ``FcfValue``\\ s —
    all immutable, so sharing is safe).
    """

    def __init__(self, maxsize: int = 65536):
        self.maxsize = maxsize
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def key(fingerprint: str, plan: Plan,
            args: Hashable = ()) -> Hashable:
        """The canonical ``(fingerprint, plan, args)`` cache key."""
        return (fingerprint, plan, args)

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Counted lookup: a hit refreshes LRU order, a miss counts."""
        if key in self._data:
            self._data.move_to_end(key)
            self.hits += 1
            return self._data[key]
        self.misses += 1
        return default

    def __contains__(self, key: Hashable) -> bool:
        # Pure containment check — does not touch the counters; use
        # ``get`` for the counted access path.
        return key in self._data

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) an entry, evicting the LRU on overflow."""
        self._data[key] = value
        self._data.move_to_end(key)
        if len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def stats(self) -> CacheStats:
        """A :class:`CacheStats` snapshot of the result cache."""
        return CacheStats(hits=self.hits, misses=self.misses,
                          evictions=self.evictions, size=len(self._data))

    def clear(self) -> None:
        """Drop every entry and zero the hit/miss/eviction counters."""
        self._data.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)


class EngineCache:
    """The two levels, bundled (one per engine; shareable across them).

    Sharing one :class:`EngineCache` between several engines over
    fingerprint-equal databases is the intended deployment shape for a
    serving tier: the fingerprint in every result key keeps tenants
    with different databases from ever reading each other's entries.
    """

    def __init__(self, plan_maxsize: int = 4096,
                 result_maxsize: int = 65536):
        self.plans = PlanCache(maxsize=plan_maxsize)
        self.results = ResultCache(maxsize=result_maxsize)

    def clear(self) -> None:
        """Clear both levels."""
        self.plans.clear()
        self.results.clear()
