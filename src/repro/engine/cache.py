"""The engine's two-level cache.

Level 1 — the **plan cache**: normalization (:func:`repro.engine.plan.
normalize`) is pure but walks the whole plan tree; it is memoized with
the kwargs-capable :func:`repro.util.memo.lru_cached`, so syntactically
repeated plans (every warm request) skip the rewrite entirely and two
differently written but ACI-equal plans converge on one key.

Level 2 — the **result cache**: finished answers keyed by
``(database fingerprint, normalized plan, args)``.  The fingerprint
(:mod:`repro.engine.fingerprint`) is what makes the entry safely
shareable across database *objects*: any two databases with the same
fingerprint agree on every generic query the engine computes, so a hit
is a correct answer regardless of which copy asked.  ``args`` carries
per-request parameters (e.g. the tuple of a membership test).

Both levels expose :class:`~repro.engine.stats.CacheStats` snapshots.

Thread safety (the serving-tier contract, ``docs/concurrency.md``):
one :class:`EngineCache` may back N engines on N threads.  The plan
cache inherits the locked memo of :func:`~repro.util.memo.lru_cached`;
the result cache is **lock-striped** — keys hash to one of several
shards, each an ``OrderedDict`` guarded by its own lock, so concurrent
lookups of distinct keys proceed in parallel while each individual
``get``/``put`` (LRU refresh included) is atomic.  Eviction keeps a
global bound with near-exact LRU order via per-entry touch stamps.
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict
from collections.abc import Hashable
from typing import Any

from ..util.memo import lru_cached
from .plan import Plan, normalize
from .stats import CacheStats

#: Default shard count of :class:`ResultCache` — enough stripes that
#: eight engine threads rarely collide, few enough that the all-shard
#: operations (``clear``, eviction victim scan) stay trivial.
DEFAULT_SHARDS = 16


class PlanCache:
    """Memoized plan preparation (level 1).

    Two memos: :meth:`normalized` (pure normalization, the historical
    entry point) and :meth:`prepared` (normalize → optimize →
    re-normalize, the engine's default since the optimizer landed).
    Both are thread-safe via the locked :func:`~repro.util.memo.
    lru_cached` wrapper; the optimizer's rewrite tallies accumulate
    under a private lock only on memo misses, so warm lookups stay
    contention-free.
    """

    def __init__(self, maxsize: int = 4096):
        self._normalize = lru_cached(maxsize=maxsize)(
            lambda plan, signature=None: normalize(plan, signature))
        self._prepare = lru_cached(maxsize=maxsize)(self._prepare_impl)
        self._opt_lock = threading.Lock()
        self._optimizations = 0
        self._rewrites: dict[str, int] = {}

    def _prepare_impl(self, plan: Plan, signature=None):
        # Imported here, not at module top: optimize.py imports plan.py
        # which this module also imports; keeping the heavy import lazy
        # avoids ordering constraints and costs one dict lookup per
        # memo *miss* only.
        from .optimize import optimize_result
        result = optimize_result(self._normalize(plan, signature=signature),
                                 signature)
        with self._opt_lock:
            self._optimizations += 1
            for name, count in result.rewrites:
                self._rewrites[name] = self._rewrites.get(name, 0) + count
        return normalize(result.plan, signature)

    def normalized(self, plan: Plan,
                   signature: tuple[int, ...] | None = None) -> Plan:
        """The normalized form of ``plan`` (memoized)."""
        return self._normalize(plan, signature=signature)

    def prepared(self, plan: Plan,
                 signature: tuple[int, ...] | None = None, *,
                 optimize: bool = True) -> Plan:
        """The executable form of ``plan``: normalized and, unless
        ``optimize=False``, rewritten by :func:`repro.engine.optimize.
        optimize` (both memoized)."""
        if not optimize:
            return self._normalize(plan, signature=signature)
        return self._prepare(plan, signature=signature)

    def optimizer_stats(self) -> tuple[int, tuple[tuple[str, int], ...]]:
        """``(plans_optimized, ((rule, firings), ...))`` so far."""
        with self._opt_lock:
            return self._optimizations, tuple(sorted(self._rewrites.items()))

    def stats(self) -> CacheStats:
        """A :class:`CacheStats` snapshot across both memos."""
        norm, prep = self._normalize, self._prepare
        with norm.lock:
            hits, misses = norm.hits, norm.misses
            evictions, size = norm.evictions, len(norm.cache)
        with prep.lock:
            return CacheStats(hits=hits + prep.hits,
                              misses=misses + prep.misses,
                              evictions=evictions + prep.evictions,
                              size=size + len(prep.cache))

    def clear(self) -> None:
        """Drop every memoized preparation (counters reset too)."""
        self._normalize.cache_clear()
        self._prepare.cache_clear()
        with self._opt_lock:
            self._optimizations = 0
            self._rewrites.clear()


class _Shard:
    """One stripe of the result cache: an LRU dict plus its lock.

    Entries are two-slot lists ``[value, stamp]``; the stamp is a
    global monotonic touch counter used to pick the globally oldest
    entry at eviction time (per-shard LRU order alone would evict the
    newest insert whenever it landed in an otherwise empty shard).
    """

    __slots__ = ("lock", "data", "hits", "misses", "evictions",
                 "shared_hits", "shared_misses")

    def __init__(self):
        self.lock = threading.Lock()
        self.data: OrderedDict[Hashable, list] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.shared_hits = 0
        self.shared_misses = 0


class ResultCache:
    """Bounded, lock-striped LRU of finished answers (level 2).

    Keys are ``(fingerprint, plan, args)`` triples; values are whatever
    the executor produced (path frozensets, booleans, ``FcfValue``\\ s —
    all immutable, so sharing is safe).

    Concurrency contract: every public method is safe to call from any
    thread.  ``get`` is atomic (containment check, LRU refresh, and
    counter bump under one shard lock — no TOCTOU window), ``put``
    is atomic per shard with the global-bound eviction loop running
    lock-free between shards; the size may transiently overshoot
    ``maxsize`` by at most the number of concurrent writers and is
    restored to ``<= maxsize`` by the time every ``put`` returns.
    Counters satisfy ``hits + misses == counted lookups`` exactly.

    Parameters
    ----------
    maxsize:
        Global entry bound across all shards.
    shards:
        Stripe count (clamped to ``maxsize`` so tiny caches keep exact
        single-dict semantics; default :data:`DEFAULT_SHARDS`).
    """

    def __init__(self, maxsize: int = 65536,
                 shards: int = DEFAULT_SHARDS):
        self.maxsize = maxsize
        nshards = max(1, min(shards, maxsize))
        self._shards = tuple(_Shard() for __ in range(nshards))
        self._ticker = itertools.count()

    @staticmethod
    def key(fingerprint: str, plan: Plan,
            args: Hashable = ()) -> Hashable:
        """The canonical ``(fingerprint, plan, args)`` cache key."""
        return (fingerprint, plan, args)

    def _shard_for(self, key: Hashable) -> _Shard:
        """The stripe ``key`` lives in (stable hash partition)."""
        return self._shards[hash(key) % len(self._shards)]

    def get(self, key: Hashable, default: Any = None, *,
            shared: bool = False) -> Any:
        """Counted lookup: a hit refreshes LRU order, a miss counts.

        Atomic under the key's shard lock: the historical
        ``key in dict`` / ``dict[key]`` two-step (which could raise
        ``KeyError`` when a concurrent ``put`` evicted in between) is
        folded into one locked access.

        ``shared=True`` marks the lookup as a *shared-subplan* probe
        (interior boundary of a compiled plan, or a batch common
        subplan): it still counts in ``hits``/``misses`` and
        additionally in the ``shared_*`` split, so observers can tell
        cross-query sharing from root-level traffic.
        """
        shard = self._shard_for(key)
        with shard.lock:
            entry = shard.data.get(key)
            if entry is not None:
                shard.data.move_to_end(key)
                entry[1] = next(self._ticker)
                shard.hits += 1
                if shared:
                    shard.shared_hits += 1
                return entry[0]
            shard.misses += 1
            if shared:
                shard.shared_misses += 1
            return default

    def __contains__(self, key: Hashable) -> bool:
        # Pure containment check — does not touch the counters; use
        # ``get`` for the counted access path.
        shard = self._shard_for(key)
        with shard.lock:
            return key in shard.data

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) an entry, evicting the LRU on overflow."""
        shard = self._shard_for(key)
        with shard.lock:
            shard.data[key] = [value, next(self._ticker)]
            shard.data.move_to_end(key)
        while len(self) > self.maxsize:
            if not self._evict_one():
                break

    def _evict_one(self) -> bool:
        """Evict the (approximately) globally oldest entry.

        Scans shard heads for the minimal touch stamp, then pops that
        shard's LRU entry.  Between the scan and the pop another thread
        may touch the shard — the pop still removes *that shard's*
        oldest entry, so the policy degrades to near-LRU rather than
        breaking.  Returns ``False`` when every shard is empty.
        """
        victim: _Shard | None = None
        oldest: int | None = None
        for shard in self._shards:
            with shard.lock:
                if shard.data:
                    head = next(iter(shard.data.values()))
                    if oldest is None or head[1] < oldest:
                        oldest = head[1]
                        victim = shard
        if victim is None:
            return False
        with victim.lock:
            if not victim.data:
                return False
            victim.data.popitem(last=False)
            victim.evictions += 1
            return True

    # -- aggregate counters (summed across shards) ---------------------------

    @property
    def hits(self) -> int:
        """Total counted hits across all shards."""
        return sum(s.hits for s in self._shards)

    @property
    def misses(self) -> int:
        """Total counted misses across all shards."""
        return sum(s.misses for s in self._shards)

    @property
    def evictions(self) -> int:
        """Total LRU evictions across all shards."""
        return sum(s.evictions for s in self._shards)

    @property
    def shards(self) -> int:
        """Number of lock stripes."""
        return len(self._shards)

    @property
    def shared_hits(self) -> int:
        """Total shared-subplan probe hits across all shards."""
        return sum(s.shared_hits for s in self._shards)

    @property
    def shared_misses(self) -> int:
        """Total shared-subplan probe misses across all shards."""
        return sum(s.shared_misses for s in self._shards)

    def stats(self) -> CacheStats:
        """A :class:`CacheStats` snapshot of the result cache."""
        return CacheStats(hits=self.hits, misses=self.misses,
                          evictions=self.evictions, size=len(self),
                          shared_hits=self.shared_hits,
                          shared_misses=self.shared_misses)

    def items(self) -> list[tuple[Hashable, Any]]:
        """A point-in-time ``(key, value)`` snapshot of every entry.

        Collected shard by shard under each shard's lock (uncounted —
        LRU order and hit/miss tallies are untouched), so the snapshot
        is consistent per shard and safe against concurrent writers.
        This is what :meth:`repro.store.backend.Store.snapshot_cache`
        walks to persist a live cache.
        """
        out: list[tuple[Hashable, Any]] = []
        for shard in self._shards:
            with shard.lock:
                out.extend((key, entry[0])
                           for key, entry in shard.data.items())
        return out

    def clear(self) -> None:
        """Drop every entry and zero the hit/miss/eviction counters."""
        for shard in self._shards:
            with shard.lock:
                shard.data.clear()
                shard.hits = 0
                shard.misses = 0
                shard.evictions = 0
                shard.shared_hits = 0
                shard.shared_misses = 0

    def __len__(self) -> int:
        return sum(len(s.data) for s in self._shards)


class EngineCache:
    """The two levels, bundled (one per engine; shareable across them).

    Sharing one :class:`EngineCache` between several engines over
    fingerprint-equal databases is the intended deployment shape for a
    serving tier: the fingerprint in every result key keeps tenants
    with different databases from ever reading each other's entries,
    and both levels are thread-safe, so the sharers may live on
    different threads (``docs/concurrency.md`` states the full
    contract; the E18 experiment bounds the locking overhead).
    """

    def __init__(self, plan_maxsize: int = 4096,
                 result_maxsize: int = 65536,
                 result_shards: int = DEFAULT_SHARDS):
        self.plans = PlanCache(maxsize=plan_maxsize)
        self.results = ResultCache(maxsize=result_maxsize,
                                   shards=result_shards)

    def clear(self) -> None:
        """Clear both levels."""
        self.plans.clear()
        self.results.clear()
