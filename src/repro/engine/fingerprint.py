"""Stable structural fingerprints for databases — the cache-safety key.

A result cache keyed only on object identity dies with the object; one
keyed on a *structural* fingerprint lets two independently constructed
copies of the same database share warm results.  The soundness argument
is genericity (Definition 2.4): a generic query's answer depends only on
the database up to isomorphism, and for an hs-r-db the ``CB``
representation pins the isomorphism type of every bounded neighbourhood
— so two databases agreeing on (type signature, characteristic-tree
prefix, representative sets, builder identity) agree on every engine
answer the cache will serve.

The *builder identity* component (the database's ``name``) is a
deliberate over-approximation: two same-named databases with different
deep structure would collide, so the name participates but the tree
prefix and representatives do the discriminating; conversely two
structurally identical databases built under different names fingerprint
apart, which costs a cold cache but never a wrong answer.

Fingerprints are hex digests (SHA-256 over a canonical text rendering),
so they are compact dict keys and printable in stats output.
"""

from __future__ import annotations

import hashlib
from typing import Any

from ..core.database import RecursiveDatabase
from ..fcf.database import FcfDatabase
from ..symmetric.hsdb import HSDatabase

#: How many tree levels the hs fingerprint hashes.  Level 2 already
#: separates every built-in construction (the hypothesis tests assert
#: it); deeper prefixes cost tree forcing for no extra discrimination
#: in practice.
DEFAULT_TREE_DEPTH = 2

#: How many domain elements the plain-r-db probe fingerprint samples.
DEFAULT_PROBE_WINDOW = 6


def _canon(x: Any) -> str:
    """A deterministic text rendering of labels / nested tuples."""
    if isinstance(x, tuple):
        return "(" + ",".join(_canon(c) for c in x) + ")"
    return f"{type(x).__name__}:{x!r}"


def _digest(parts: list[str]) -> str:
    h = hashlib.sha256()
    for p in parts:
        h.update(p.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


def fingerprint_hsdb(hsdb: HSDatabase,
                     depth: int = DEFAULT_TREE_DEPTH) -> str:
    """Fingerprint an hs-r-db from its finite ``CB`` core.

    Components: kind tag, builder identity (``name``), type signature,
    the characteristic-tree prefix to ``depth`` (levels in tree order),
    and the representative sets (sorted canonically).  Everything hashed
    is part of the Definition 3.7 representation — no equivalence-oracle
    calls are spent beyond what forcing the tree prefix costs.
    """
    parts = ["hs", hsdb.name, _canon(hsdb.signature)]
    for n in range(depth + 1):
        level = hsdb.tree.level(n)
        parts.append(f"T^{n}:" + "|".join(_canon(p) for p in level))
    for i, reps in enumerate(hsdb.representatives):
        parts.append(
            f"C{i + 1}:" + "|".join(sorted(_canon(p) for p in reps)))
    return _digest(parts)


def fingerprint_fcf(db: FcfDatabase) -> str:
    """Fingerprint an fcf-r-db from its finite parts and indicators.

    The finite parts plus the co-finiteness indicators *are* the
    Definition 4.1 representation, so the fingerprint is exact: equal
    fingerprints imply equal databases (not merely isomorphic ones).
    """
    parts = ["fcf", db.name, _canon(db.type_signature)]
    for i, r in enumerate(db.relations):
        parts.append(
            f"R{i + 1}:{int(r.cofinite)}:"
            + "|".join(sorted(_canon(t) for t in r.tuples)))
    return _digest(parts)


def fingerprint_rdb(db: RecursiveDatabase,
                    window: int = DEFAULT_PROBE_WINDOW) -> str:
    """Fingerprint a plain r-db by probing a bounded window.

    A general recursive database has no finite complete description, so
    the fingerprint samples membership over all tuples from the first
    ``window`` domain elements — the same "ask only membership
    questions" discipline as Definition 2.4's oracle.  Two different
    databases agreeing on the window *do* collide; callers holding
    merely recursive (non-hs) databases should treat cached results as
    window-conditional, or widen the window.
    """
    from itertools import product

    pool = db.domain.first(window)
    parts = ["rdb", db.name, _canon(db.type_signature),
             "pool:" + "|".join(_canon(x) for x in pool)]
    for i, arity in enumerate(db.type_signature):
        bits = "".join(
            "1" if db.contains(i, u) else "0"
            for u in product(pool, repeat=arity))
        parts.append(f"R{i + 1}:{bits}")
    return _digest(parts)


def fingerprint(db: HSDatabase | FcfDatabase | RecursiveDatabase,
                **kwargs) -> str:
    """Dispatch on database kind (hs / fcf / plain recursive)."""
    if isinstance(db, HSDatabase):
        return fingerprint_hsdb(db, **kwargs)
    if isinstance(db, FcfDatabase):
        return fingerprint_fcf(db, **kwargs)
    if isinstance(db, RecursiveDatabase):
        return fingerprint_rdb(db, **kwargs)
    raise TypeError(f"cannot fingerprint {type(db).__name__}")
