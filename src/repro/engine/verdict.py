"""Three-valued verdicts: the engine's divergence-handling contract.

Queries over recursive databases are partial — a QLhs loop, a GMhs
run, or a counter search may diverge, and Section 4 of the paper forces
step bounds everywhere.  Following the *complete approximations*
reading (Corman–Nutt–Savković, PAPERS.md): when evaluation cannot
complete within its :class:`~repro.trace.Budget`, the engine reports a
sound partial answer instead of raising.  :meth:`Engine.eval
<repro.engine.executor.Engine.eval>` therefore returns a
:class:`Verdict`:

* ``TRUE`` / ``FALSE`` — evaluation completed; :attr:`Verdict.value`
  carries the evaluated relation;
* ``UNKNOWN`` — the budget tripped; :attr:`Verdict.reason` is the
  machine-readable dimension (``out_of_fuel`` / ``deadline`` /
  ``cancelled``) and :attr:`Verdict.steps` how far the run got.

``bool(verdict)`` is deliberately strict: it raises on ``UNKNOWN`` so
three-valued answers cannot silently collapse into two.

Doctest::

    >>> from repro.engine.verdict import Verdict
    >>> Verdict.unknown("deadline").is_unknown
    True
    >>> bool(Verdict.of(True))
    True
    >>> bool(Verdict.unknown("out_of_fuel"))
    Traceback (most recent call last):
        ...
    ValueError: Verdict is UNKNOWN (out_of_fuel); test .is_unknown first
"""

from __future__ import annotations

from dataclasses import dataclass

TRUE = "true"
FALSE = "false"
UNKNOWN = "unknown"


@dataclass(frozen=True)
class Verdict:
    """One engine answer under the three-valued contract."""

    status: str
    reason: str | None = None
    value: object = None
    steps: int | None = None

    # -- constructors --------------------------------------------------------

    @staticmethod
    def of(truth: bool, value: object = None) -> "Verdict":
        """A known verdict from a boolean (keeping the evaluated value)."""
        return Verdict(TRUE if truth else FALSE, value=value)

    @staticmethod
    def unknown(reason: str, steps: int | None = None) -> "Verdict":
        """A sound don't-know answer with its machine-readable reason."""
        return Verdict(UNKNOWN, reason=reason, steps=steps)

    # -- predicates ----------------------------------------------------------

    @property
    def known(self) -> bool:
        """Whether evaluation completed (``TRUE`` or ``FALSE``)."""
        return self.status != UNKNOWN

    @property
    def is_true(self) -> bool:
        """Whether the verdict is ``TRUE``."""
        return self.status == TRUE

    @property
    def is_false(self) -> bool:
        """Whether the verdict is ``FALSE``."""
        return self.status == FALSE

    @property
    def is_unknown(self) -> bool:
        """Whether the budget tripped before an answer was reached."""
        return self.status == UNKNOWN

    def __bool__(self) -> bool:
        if self.status == UNKNOWN:
            raise ValueError(
                f"Verdict is UNKNOWN ({self.reason}); test .is_unknown "
                "first")
        return self.status == TRUE

    def __repr__(self) -> str:
        if self.status == UNKNOWN:
            extra = f", reason={self.reason!r}"
            if self.steps is not None:
                extra += f", steps={self.steps}"
            return f"Verdict(UNKNOWN{extra})"
        return f"Verdict({self.status.upper()})"
