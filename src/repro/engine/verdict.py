"""Three-valued verdicts: the engine's divergence-handling contract.

Queries over recursive databases are partial — a QLhs loop, a GMhs
run, or a counter search may diverge, and Section 4 of the paper forces
step bounds everywhere.  Following the *complete approximations*
reading (Corman–Nutt–Savković, PAPERS.md): when evaluation cannot
complete within its :class:`~repro.trace.Budget`, the engine reports a
sound partial answer instead of raising.  :meth:`Engine.eval
<repro.engine.executor.Engine.eval>` therefore returns a
:class:`Verdict`:

* ``TRUE`` / ``FALSE`` — evaluation completed; :attr:`Verdict.value`
  carries the evaluated relation;
* ``UNKNOWN`` — the budget tripped; :attr:`Verdict.reason` is the
  machine-readable dimension (``out_of_fuel`` / ``deadline`` /
  ``cancelled``) and :attr:`Verdict.steps` how far the run got.

``bool(verdict)`` is deliberately strict: it raises on ``UNKNOWN`` so
three-valued answers cannot silently collapse into two.

The comparison surface — :meth:`Verdict.agrees`,
:meth:`Verdict.conflicts`, and :func:`merge_verdicts` — implements the
*approximation-soundness* discipline the differential checker
(:mod:`repro.check`) relies on: two verdicts for the same question
conflict only when **both** completed and answered differently, so an
``UNKNOWN`` can never flip a genuine TRUE/FALSE disagreement into
"agreement", nor invent one.  The comparison is deterministic: it looks
only at ``status`` — never at the evaluated ``value`` (whose
representation differs across frontends) nor at ``steps`` (which
differ across routes).

Doctest::

    >>> from repro.engine.verdict import Verdict, merge_verdicts
    >>> Verdict.unknown("deadline").is_unknown
    True
    >>> bool(Verdict.of(True))
    True
    >>> bool(Verdict.unknown("out_of_fuel"))
    Traceback (most recent call last):
        ...
    ValueError: Verdict is UNKNOWN (out_of_fuel); test .is_unknown first
    >>> Verdict.of(True).agrees(Verdict.unknown("deadline"))
    True
    >>> Verdict.of(True).conflicts(Verdict.of(False))
    True
    >>> merge_verdicts([Verdict.unknown("deadline"),
    ...                 Verdict.of(True)]).is_true
    True
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

TRUE = "true"
FALSE = "false"
UNKNOWN = "unknown"


@dataclass(frozen=True)
class Verdict:
    """One engine answer under the three-valued contract."""

    status: str
    reason: str | None = None
    value: object = None
    steps: int | None = None

    # -- constructors --------------------------------------------------------

    @staticmethod
    def of(truth: bool, value: object = None) -> "Verdict":
        """A known verdict from a boolean (keeping the evaluated value)."""
        return Verdict(TRUE if truth else FALSE, value=value)

    @staticmethod
    def unknown(reason: str, steps: int | None = None) -> "Verdict":
        """A sound don't-know answer with its machine-readable reason."""
        return Verdict(UNKNOWN, reason=reason, steps=steps)

    # -- predicates ----------------------------------------------------------

    @property
    def known(self) -> bool:
        """Whether evaluation completed (``TRUE`` or ``FALSE``)."""
        return self.status != UNKNOWN

    @property
    def is_true(self) -> bool:
        """Whether the verdict is ``TRUE``."""
        return self.status == TRUE

    @property
    def is_false(self) -> bool:
        """Whether the verdict is ``FALSE``."""
        return self.status == FALSE

    @property
    def is_unknown(self) -> bool:
        """Whether the budget tripped before an answer was reached."""
        return self.status == UNKNOWN

    # -- deterministic comparison (the checker's contract) -------------------

    def agrees(self, other: "Verdict") -> bool:
        """Agreement modulo ``UNKNOWN``: true unless both completed and
        answered differently.

        This is the soundness direction the differential oracles need —
        a tripped budget (``UNKNOWN``) abstains rather than voting, so
        it can neither mask nor manufacture a TRUE/FALSE disagreement.
        """
        return not self.conflicts(other)

    def conflicts(self, other: "Verdict") -> bool:
        """Whether both verdicts completed with *different* answers.

        Deterministic: compares ``status`` only — the evaluated
        ``value`` (frontend-specific representation) and ``steps``
        (route-specific cost) are ignored.
        """
        return self.known and other.known and self.status != other.status

    def __bool__(self) -> bool:
        if self.status == UNKNOWN:
            raise ValueError(
                f"Verdict is UNKNOWN ({self.reason}); test .is_unknown "
                "first")
        return self.status == TRUE

    def __repr__(self) -> str:
        if self.status == UNKNOWN:
            extra = f", reason={self.reason!r}"
            if self.steps is not None:
                extra += f", steps={self.steps}"
            return f"Verdict(UNKNOWN{extra})"
        return f"Verdict({self.status.upper()})"


def merge_verdicts(verdicts: "Sequence[Verdict] | Iterable[Verdict]"
                   ) -> Verdict:
    """The deterministic consensus of several verdicts for *one* question.

    * every pair must :meth:`~Verdict.agree <Verdict.agrees>` — a
      TRUE/FALSE conflict raises :class:`ValueError` (the caller, e.g. a
      differential oracle, wants to see the conflict, not average it);
    * if any verdict completed, the consensus is that known answer
      (``UNKNOWN`` members merely abstain);
    * if all are ``UNKNOWN``, the consensus is ``UNKNOWN`` carrying the
      lexicographically smallest reason — a deterministic choice that
      does not depend on route ordering.

    Doctest::

        >>> from repro.engine.verdict import Verdict, merge_verdicts
        >>> merge_verdicts([Verdict.unknown("out_of_fuel"),
        ...                 Verdict.unknown("deadline")]).reason
        'deadline'
        >>> merge_verdicts([Verdict.of(False), Verdict.of(True)])
        Traceback (most recent call last):
            ...
        ValueError: conflicting verdicts: FALSE vs TRUE
    """
    verdicts = list(verdicts)
    if not verdicts:
        raise ValueError("merge_verdicts needs at least one verdict")
    known = [v for v in verdicts if v.known]
    for v in known[1:]:
        if v.conflicts(known[0]):
            raise ValueError(
                f"conflicting verdicts: {known[0].status.upper()} vs "
                f"{v.status.upper()}")
    if known:
        return known[0]
    reason = min((v.reason or "") for v in verdicts) or None
    return Verdict.unknown(reason or "unknown")
