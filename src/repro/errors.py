"""Exception hierarchy for the ``repro`` (recdb) library.

Every error raised by the library derives from :class:`RecdbError`, so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class RecdbError(Exception):
    """Base class for all errors raised by the recdb library."""


class ArityError(RecdbError):
    """A tuple's rank does not match the arity a relation or type expects."""


class TypeSignatureError(RecdbError):
    """Two databases (or a database and a query) have incompatible types.

    The *type* of a database is the tuple of arities of its relations
    (Definition 2.1 of the paper).
    """


class DomainError(RecdbError):
    """An element does not belong to the domain it was used with."""


class UndefinedQueryError(RecdbError):
    """The everywhere-undefined query was applied and forced.

    ``L⁻`` contains a special expression ``undefined`` whose result is the
    everywhere-undefined query (Section 2); forcing its value raises this.
    """


class OutOfFuel(RecdbError):
    """An interpreter exhausted its :class:`~repro.trace.budget.Budget`.

    Query languages over recursive databases express *partial* functions;
    all interpreters in this library run under an explicit budget and
    raise this error instead of diverging.  ``reason`` is the
    machine-readable dimension that tripped — ``"out_of_fuel"`` (step or
    oracle allowance), ``"deadline"`` (wall clock), or ``"cancelled"``
    (cooperative cancellation) — and is what
    :meth:`repro.engine.executor.Engine.eval` surfaces on
    ``Verdict.UNKNOWN`` instead of letting this exception escape.
    """

    def __init__(self, message: str = "computation exceeded its step budget",
                 steps: int | None = None, reason: str = "out_of_fuel"):
        super().__init__(message)
        self.steps = steps
        self.reason = reason


class RankMismatchError(RecdbError):
    """An operation combined relation values of different ranks."""


class NotHighlySymmetricError(RecdbError):
    """An operation requiring a highly symmetric database detected a witness
    that the database is not highly symmetric (e.g. an unbounded frontier
    while building a characteristic-tree level)."""


class RepresentationError(RecdbError):
    """A ``CB`` representation is internally inconsistent.

    For example: a claimed representative is not a path of the
    characteristic tree, or two paths of the tree are ≅_B-equivalent.
    """


class ParseError(RecdbError):
    """A formula or program text could not be parsed."""

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class MachineError(RecdbError):
    """A machine (TM / counter machine / generic machine) is ill-formed or
    entered an invalid configuration."""
