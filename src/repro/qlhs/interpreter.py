"""The QLhs interpreter: semantics over the ``CB`` representation (§3.3).

Values are finite sets of characteristic-tree paths of a common rank —
"at any point during the computation of a program each term contains the
labels along some paths in Tⁿ, for some n".  Every operation consults
only the tree and the ``≅_B`` oracle, exactly as the completeness proof
requires; the whole infinite database is never touched.

Programs express *partial* queries, so execution is governed by a
:class:`~repro.trace.Budget` and raises :class:`~repro.errors.OutOfFuel`
(with a machine-readable reason) instead of diverging.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Mapping

from ..errors import RankMismatchError, TypeSignatureError
from ..symmetric.hsdb import HSDatabase
from ..trace import Budget, limits, span
from ..trace.budget import as_budget
from ..symmetric.tree import Path
from ..util.seqs import swap_last_two
from .ast import (
    Assign,
    Comp,
    Down,
    E,
    Inter,
    Permute,
    Product,
    Program,
    Rel,
    SelectEq,
    Seq,
    Swap,
    Term,
    Up,
    VarT,
    WhileEmpty,
    WhileSingleton,
)


@dataclass(frozen=True)
class Value:
    """A QLhs value: representatives of some classes of one rank."""

    rank: int
    paths: frozenset[Path]

    def __post_init__(self):
        for p in self.paths:
            if len(p) != self.rank:
                raise RankMismatchError(
                    f"path {p!r} has rank {len(p)}, value has rank {self.rank}")

    @property
    def is_empty(self) -> bool:
        return not self.paths

    @property
    def is_singleton(self) -> bool:
        return len(self.paths) == 1

    def __len__(self) -> int:
        return len(self.paths)

    def __iter__(self):
        return iter(sorted(self.paths, key=repr))

    def __repr__(self) -> str:
        return f"Value(rank={self.rank}, {len(self.paths)} reps)"


def empty_value(rank: int = 0) -> Value:
    return Value(rank, frozenset())


class QLhsInterpreter:
    """Execute QLhs programs against an hs-r-db's ``CB`` representation.

    Parameters
    ----------
    hsdb:
        The database, as a Definition 3.7 representation.
    budget:
        A :class:`~repro.trace.Budget` governing the run; one step is
        one executed statement or term operation (bulk operations cost
        their output size).  Exceeding any dimension raises
        :class:`~repro.errors.OutOfFuel` (QLhs expresses partial
        queries).  ``fuel=N`` is the deprecated alias for
        ``budget=Budget(max_steps=N)`` (default
        :data:`repro.trace.limits.QLHS_INTERPRETER`).
    """

    def __init__(self, hsdb: HSDatabase, fuel: int | None = None, *,
                 budget: Budget | int | None = None):
        self.hsdb = hsdb
        self.budget = as_budget(budget, fuel,
                                default_steps=limits.QLHS_INTERPRETER)
        self._oracle_seen = hsdb.equiv.calls

    # -- accounting --------------------------------------------------------

    @property
    def fuel(self) -> int | None:
        """Deprecated alias for ``budget.max_steps``."""
        return self.budget.max_steps

    @property
    def steps(self) -> int:
        """Steps charged to the budget so far."""
        return self.budget.steps

    def _tick(self, cost: int = 1) -> None:
        self.budget.charge(cost)
        if self.budget.max_oracle_calls is not None:
            calls = self.hsdb.equiv.calls
            if calls > self._oracle_seen:
                self.budget.charge_oracle(calls - self._oracle_seen)
                self._oracle_seen = calls

    # -- fixed values -------------------------------------------------------

    def value_E(self) -> Value:
        """``E`` — the rank-2 representatives with equal coordinates."""
        return Value(2, frozenset(
            p for p in self.hsdb.tree.level(2) if p[0] == p[1]))

    def full_level(self, n: int) -> Value:
        """``Tⁿ`` as a value (used by complement)."""
        return Value(n, frozenset(self.hsdb.tree.level(n)))

    # -- term evaluation ----------------------------------------------------

    def eval_term(self, term: Term, store: Mapping[str, Value]) -> Value:
        self._tick()
        if isinstance(term, E):
            return self.value_E()
        if isinstance(term, Rel):
            if not 0 <= term.index < self.hsdb.k:
                raise TypeSignatureError(
                    f"Rel{term.index + 1} out of range for type "
                    f"{self.hsdb.signature}")
            return Value(self.hsdb.signature[term.index],
                         self.hsdb.representatives[term.index])
        if isinstance(term, VarT):
            if term.name not in store:
                # "Variables are initialized to the empty set."
                return empty_value(0)
            return store[term.name]
        if isinstance(term, Inter):
            left = self.eval_term(term.left, store)
            right = self.eval_term(term.right, store)
            if left.rank != right.rank:
                raise RankMismatchError(
                    f"∩ of rank {left.rank} and rank {right.rank}")
            return Value(left.rank, left.paths & right.paths)
        if isinstance(term, Comp):
            body = self.eval_term(term.body, store)
            return Value(body.rank,
                         self.full_level(body.rank).paths - body.paths)
        if isinstance(term, Up):
            body = self.eval_term(term.body, store)
            out = set()
            for p in body.paths:
                for a in self.hsdb.tree.children(p):
                    out.add(p + (a,))
            self._tick(len(out))
            return Value(body.rank + 1, frozenset(out))
        if isinstance(term, Down):
            body = self.eval_term(term.body, store)
            if body.rank == 0:
                # Documented deviation: ↓ on rank 0 is the empty rank-0
                # value, realizing the zero test of the counter encoding.
                return empty_value(0)
            out = set()
            for p in body.paths:
                out.add(self.hsdb.canonical_representative(p[1:]))
            self._tick(len(body.paths))
            return Value(body.rank - 1, frozenset(out))
        if isinstance(term, Swap):
            body = self.eval_term(term.body, store)
            if body.rank < 2:
                raise RankMismatchError("~ requires rank >= 2")
            out = {self.hsdb.canonical_representative(swap_last_two(p))
                   for p in body.paths}
            self._tick(len(body.paths))
            return Value(body.rank, frozenset(out))
        if isinstance(term, Product):
            left = self.eval_term(term.left, store)
            right = self.eval_term(term.right, store)
            m, n = left.rank, right.rank
            out = set()
            for r in self.hsdb.tree.level(m + n):
                head = self.hsdb.canonical_representative(r[:m]) if m else ()
                tail = self.hsdb.canonical_representative(r[m:]) if n else ()
                if head in left.paths and tail in right.paths:
                    out.add(r)
            self._tick(len(self.hsdb.tree.level(m + n)))
            return Value(m + n, frozenset(out))
        if isinstance(term, Permute):
            body = self.eval_term(term.body, store)
            if len(term.perm) != body.rank:
                raise RankMismatchError(
                    f"permutation of length {len(term.perm)} applied to "
                    f"rank-{body.rank} value")
            out = {self.hsdb.canonical_representative(
                tuple(p[i] for i in term.perm)) for p in body.paths}
            self._tick(len(body.paths))
            return Value(body.rank, frozenset(out))
        if isinstance(term, SelectEq):
            body = self.eval_term(term.body, store)
            i = term.i if term.i >= 0 else body.rank + term.i
            j = term.j if term.j >= 0 else body.rank + term.j
            if not (0 <= i < body.rank and 0 <= j < body.rank):
                raise RankMismatchError(
                    f"selection positions ({term.i}, {term.j}) out of range "
                    f"for rank {body.rank}")
            return Value(body.rank, frozenset(
                p for p in body.paths if p[i] == p[j]))
        raise TypeError(f"unknown term {term!r}")

    # -- program execution --------------------------------------------------

    def run(self, program: Program,
            inputs: Mapping[str, Value] | None = None,
            result_var: str = "Y1") -> Value:
        """Run a program; the result is the contents of ``result_var``."""
        store = self.execute(program, inputs)
        return store.get(result_var, empty_value(0))

    def execute(self, program: Program,
                inputs: Mapping[str, Value] | None = None
                ) -> dict[str, Value]:
        """Run a program and return the final store."""
        store: dict[str, Value] = dict(inputs or {})
        with span("qlhs.execute") as sp:
            steps_before = self.budget.steps
            oracle_before = self.hsdb.equiv.calls
            try:
                self._exec(program, store)
            finally:
                sp.count("steps", self.budget.steps - steps_before)
                sp.count("oracle_questions",
                         self.hsdb.equiv.calls - oracle_before)
        return store

    def _exec(self, program: Program, store: dict[str, Value]) -> None:
        self._tick()
        if isinstance(program, Assign):
            store[program.var] = self.eval_term(program.term, store)
            return
        if isinstance(program, Seq):
            for p in program.body:
                self._exec(p, store)
            return
        if isinstance(program, WhileEmpty):
            while store.get(program.var, empty_value(0)).is_empty:
                self._tick()
                self._exec(program.body, store)
            return
        if isinstance(program, WhileSingleton):
            while store.get(program.var, empty_value(0)).is_singleton:
                self._tick()
                self._exec(program.body, store)
            return
        raise TypeError(f"unknown program {program!r}")

    def value_from_tuples(self, tuples: Iterable[tuple]) -> Value:
        """Canonicalize arbitrary same-rank tuples into a value."""
        tuples = [tuple(t) for t in tuples]
        if not tuples:
            return empty_value(0)
        ranks = {len(t) for t in tuples}
        if len(ranks) != 1:
            raise RankMismatchError(f"mixed ranks {sorted(ranks)}")
        return Value(ranks.pop(), self.hsdb.canonicalize_set(tuples))

    def tuples_of(self, value: Value, per_class: int = 1,
                  window: int = 64) -> set[tuple]:
        """Concrete database tuples of the denoted relation (a finite
        sample: up to ``per_class`` tuples per class found among tuples
        over the first ``window`` domain elements)."""
        from itertools import product as _product

        out: set[tuple] = set()
        found: dict[Path, int] = {p: 0 for p in value.paths}
        pool = self.hsdb.domain.first(window)
        for u in _product(pool, repeat=value.rank):
            for p in value.paths:
                if found[p] < per_class and self.hsdb.equivalent(u, p):
                    out.add(u)
                    found[p] += 1
                    break
            if all(v >= per_class for v in found.values()):
                break
        return out
