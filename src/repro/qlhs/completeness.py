"""The Theorem 3.1 completeness pipeline — the program ``P_Q``.

Given a recursive generic hs-r-query ``Q`` (here: any Python procedure
operating on an ℕ-encoded model, standing for the Turing machine ``M``
of Definition 3.9), the proof exhibits a QLhs program computing it in
four steps, all implemented here on top of the interpreter's operations:

1. **Find d** — a tuple of distinct elements whose projections recover
   every ``Cᵢ`` (searched through ``Vⁿ`` computations; we reuse the same
   search the proof describes, checking candidates level by level);
2. **Encode** — compute the position sets ``Xⱼ`` making
   ``(|d|, X₁,…,X_k)`` an ℕ-model ``B_N`` isomorphic to ``B``'s
   restriction to ``d``'s class;
3. **Run M** — execute the query procedure on ``B_N``, answering its
   ``T_{B_N}``/``≅_{B_N}`` questions through ``d`` (``d[x]↓``-style
   projections and ``d[x] = d[y]`` checks);
4. **Decode** — map the output position-tuples back through ``d`` to
   representatives: ``Q(CB) = ⋃ d[i₁,…,i_m]``.

The partition machinery the proof builds ``d`` from — ``Vⁿ₀`` by
refinement splits, ``Vⁿᵣ = Vⁿ⁺ʳ₀↓ʳ``, the ``|Vᵢ| = 1`` detection — is
implemented with genuine QLhs term operations (``↑``, ``↓``, ``∩``, ``¬``
and the [CH]-definable selection intrinsics), so the pipeline really is
the paper's program, with Python only supplying control flow (which QLhs
possesses by the counter-machine result, :mod:`repro.qlhs.counter_compile`).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from itertools import product

from ..errors import NotHighlySymmetricError
from ..symmetric.hsdb import HSDatabase
from ..symmetric.tree import Path
from ..trace import limits, span
from ..trace.budget import as_budget
from ..util.seqs import distinct, project
from .ast import Down, Term
from .derived import (
    full_term,
    select_atom,
    select_equal,
    select_not_atom,
    select_not_equal,
)
from .interpreter import QLhsInterpreter, Value

NModel = list[frozenset[tuple[int, ...]]]
QueryProcedure = Callable[["ModelOracle"], set]
"""A procedure standing for the oracle TM ``M``: consumes a
:class:`ModelOracle` and returns a set of position tuples."""


def full_level_value(interp: QLhsInterpreter, n: int) -> Value:
    """``Tⁿ`` computed as the paper does: ``(E↓↓)↑ⁿ``."""
    return interp.eval_term(full_term(n), {})


def compute_v_n_0(interp: QLhsInterpreter, n: int) -> list[Value]:
    """``Vⁿ₀`` by refinement splits, exactly as ``P_Q`` computes it.

    Start from ``Tⁿ`` and repeatedly split blocks "by checking the
    containment or non-containment of all possible projections of the
    appropriate tuples in the relations of B", plus the equality
    selections that distinguish equality patterns.  Splitting uses only
    QLhs term operations.
    """
    hsdb = interp.hsdb
    blocks = [full_level_value(interp, n)]

    def split(block: Value, selector: Term, the_rest: Term) -> list[Value]:
        a = interp.eval_term(selector, {"__blk": block})
        b = interp.eval_term(the_rest, {"__blk": block})
        out = [v for v in (a, b) if not v.is_empty]
        return out if len(out) == 2 else [block]

    from .ast import VarT
    blk = VarT("__blk")

    selectors: list[tuple[Term, Term]] = []
    for i in range(n):
        for j in range(i + 1, n):
            selectors.append((select_equal(blk, i, j),
                              select_not_equal(blk, i, j)))
    for rel_index, arity in enumerate(hsdb.signature):
        for positions in product(range(n), repeat=arity):
            selectors.append((
                select_atom(blk, n, rel_index, arity, positions),
                select_not_atom(blk, n, rel_index, arity, positions),
            ))

    changed = True
    while changed:
        changed = False
        next_blocks: list[Value] = []
        for block in blocks:
            pieces = [block]
            for selector, rest in selectors:
                refined: list[Value] = []
                for piece in pieces:
                    parts = split(piece, selector, rest)
                    refined.extend(parts)
                if len(refined) > len(pieces):
                    changed = True
                pieces = refined
            next_blocks.extend(pieces)
        blocks = next_blocks
    return blocks


def project_blocks(interp: QLhsInterpreter, blocks: Sequence[Value],
                   n: int) -> list[Value]:
    """The ``↓`` step of Definition 3.6, inducing the partition of ``Tⁿ``.

    Each block is projected with the QLhs ``↓`` term; paths of ``Tⁿ``
    are regrouped by which projected blocks contain them (two paths
    separate exactly when some ``Vᵢ↓`` contains one but not the other —
    Proposition 3.7).
    """
    from .ast import VarT

    projected = [interp.eval_term(Down(VarT("__blk")), {"__blk": b})
                 for b in blocks]
    level = interp.hsdb.tree.level(n)
    groups: dict[frozenset[int], set[Path]] = {}
    for u in level:
        signature = frozenset(i for i, pb in enumerate(projected)
                              if u in pb.paths)
        groups.setdefault(signature, set()).add(u)
    return [Value(n, frozenset(paths)) for paths in groups.values()]


def compute_v_n_r(interp: QLhsInterpreter, n: int, r: int) -> list[Value]:
    """``Vⁿᵣ = Vⁿ⁺ʳ₀ ↓ʳ`` (Corollary 3.3), as block values."""
    blocks = compute_v_n_0(interp, n + r)
    for depth in range(n + r - 1, n - 1, -1):
        blocks = project_blocks(interp, blocks, depth)
    return blocks


def compute_v_n(interp: QLhsInterpreter, n: int,
                max_r: int = 32) -> tuple[list[Value], int]:
    """``Vⁿ`` via the ``|Vᵢ| = 1`` detection loop of ``P_Q``."""
    for r in range(max_r + 1):
        blocks = compute_v_n_r(interp, n, r)
        if all(b.is_singleton for b in blocks):
            return blocks, r
    raise NotHighlySymmetricError(
        f"V^{n}_r did not reach singletons within r={max_r}")


def find_d_qlhs(interp: QLhsInterpreter, max_n: int = 10) -> Path:
    """Step 1 of ``P_Q``: the encoding tuple.

    For n = 1, 2, …, walk the rank-n representatives (the paper isolates
    them via the ``Vⁿ`` computation; our ``CB`` interpreter reads them
    off ``(E↓↓)↑ⁿ`` directly — the ``Vⁿ`` machinery itself is exercised
    separately by :func:`compute_v_n`) and return the first
    distinct-element path whose projections cover every ``Cᵢ``.
    """
    hsdb = interp.hsdb
    needed = {x for reps in hsdb.representatives for p in reps for x in p}
    bound = min(max_n, max(1, len(needed)))
    for n in range(1, bound + 1):
        level = full_level_value(interp, n).paths
        for d in hsdb.tree.level(n):  # deterministic order over the same set
            if d not in level or not distinct(d):
                continue
            if _encodes_all(hsdb, d):
                return d
    raise NotHighlySymmetricError(
        f"no encoding tuple found up to rank {bound}")


def _encodes_all(hsdb: HSDatabase, d: Path) -> bool:
    for arity, reps in zip(hsdb.signature, hsdb.representatives):
        for c in reps:
            if not any(hsdb.equivalent(project(d, pos), c)
                       for pos in product(range(len(d)), repeat=arity)):
                return False
    return True


def encode_n_model(hsdb: HSDatabase, d: Path) -> NModel:
    """Step 2: the position sets ``Xⱼ`` (the internal model ``B_N``)."""
    n = len(d)
    out: NModel = []
    for i, arity in enumerate(hsdb.signature):
        out.append(frozenset(
            pos for pos in product(range(n), repeat=arity)
            if hsdb.contains(i, project(d, pos))))
    return out


class ModelOracle:
    """The ℕ-model ``B_N`` as the Turing machine ``M`` sees it (Step 3).

    Positions ``0 … size−1`` name the components of the (growing)
    encoding tuple ``d``.  The oracle answers exactly the question forms
    the proof enumerates:

    * ``atom(i, positions)`` — "is the projection in ``Rᵢ``?", answered
      by ``d``-projection and real membership;
    * ``equiv(u, v)`` — "is ``x ≅_{B_N} y``?", answered by checking
      ``d[x] ≅_B d[y]``;
    * ``children(positions)`` — "what is ``T_{B_N}(x)``?": the tree
      offspring of the projection's representative, *encoded back* as
      positions.  When a child class has no witness among ``d``'s
      elements, ``d`` is extended with a fresh witness — the proof's
      "P_Q computes a larger d as it did for the original one".
    """

    def __init__(self, hsdb: HSDatabase, d: Path, search_window: int = 512):
        self.hsdb = hsdb
        self.elements: list = list(d)
        self.search_window = search_window
        self.extensions = 0

    @property
    def size(self) -> int:
        return len(self.elements)

    def _project(self, positions: Sequence[int]) -> tuple:
        return tuple(self.elements[p] for p in positions)

    def atom(self, relation_index: int, positions: Sequence[int]) -> bool:
        """Membership of a projection in a relation of ``B_N``."""
        return self.hsdb.contains(relation_index, self._project(positions))

    def equiv(self, u: Sequence[int], v: Sequence[int]) -> bool:
        """``≅_{B_N}`` between position tuples."""
        return self.hsdb.equivalent(self._project(u), self._project(v))

    def relations(self) -> NModel:
        """The materialized position sets ``Xⱼ`` over the current size."""
        out: NModel = []
        for i, arity in enumerate(self.hsdb.signature):
            out.append(frozenset(
                pos for pos in product(range(self.size), repeat=arity)
                if self.atom(i, pos)))
        return out

    def children(self, positions: Sequence[int]) -> list[int]:
        """``T_{B_N}(x)``: one position per extension class of ``x``."""
        base = self._project(positions)
        rep = self.hsdb.canonical_representative(base)
        out = []
        for a in self.hsdb.tree.children(rep):
            target = rep + (a,)
            out.append(self._position_realizing(base, target))
        return out

    def _position_realizing(self, base: tuple, target: Path) -> int:
        """A position ``e`` with ``base + (d[e],) ≅_B target``; extends
        ``d`` with a fresh domain witness when none exists yet."""
        for pos, element in enumerate(self.elements):
            if self.hsdb.equivalent(base + (element,), target):
                return pos
        for candidate in self.hsdb.domain.first(self.search_window):
            if candidate in self.elements:
                continue
            if self.hsdb.equivalent(base + (candidate,), target):
                self.elements.append(candidate)
                self.extensions += 1
                return len(self.elements) - 1
        raise NotHighlySymmetricError(
            f"no witness for extension class {target!r} within the first "
            f"{self.search_window} domain elements")


class PQPipeline:
    """End-to-end ``P_Q``: run a recursive generic query through QLhs.

    The query is a Python procedure ``machine(oracle)`` standing for the
    oracle Turing machine ``M`` of Definition 3.9; it must consult the
    database only through the :class:`ModelOracle` and return a set of
    position tuples (the representatives of ``Q(B_N)``).  The pipeline
    finds ``d`` (Step 1, via QLhs values), encodes (Step 2), runs the
    machine against the oracle (Step 3), and decodes the output
    positions back through ``d`` into tree representatives (Step 4's
    ``⋃ d[i₁,…,i_m]``).
    """

    def __init__(self, hsdb: HSDatabase, fuel: int | None = None,
                 search_window: int = 512, *, budget=None):
        self.hsdb = hsdb
        self.budget = as_budget(budget, fuel,
                                default_steps=limits.PQ_PIPELINE)
        self.interpreter = QLhsInterpreter(hsdb, budget=self.budget)
        self.search_window = search_window

    def execute(self, machine: QueryProcedure, max_n: int = 10) -> Value:
        """Run the four proof steps; see the class docstring."""
        with span("pq.execute", database=self.hsdb.name):
            with span("pq.find_d") as sp:
                d = find_d_qlhs(self.interpreter, max_n=max_n)
                sp.set(d=repr(d))
                sp.count("steps", self.interpreter.steps)
            with span("pq.encode"):
                oracle = ModelOracle(self.hsdb, d,
                                     search_window=self.search_window)
            with span("pq.machine") as sp:
                before = self.hsdb.equiv.calls
                output = machine(oracle)
                sp.count("oracle_questions",
                         self.hsdb.equiv.calls - before)
            with span("pq.decode"):
                return self._decode(oracle, output)

    def _decode(self, oracle: ModelOracle, output) -> Value:
        """Step 4: fold output positions back into tree representatives."""
        if not output:
            return Value(0, frozenset())
        ranks = {len(pos) for pos in output}
        if len(ranks) != 1:
            raise NotHighlySymmetricError(
                "a generic query yields tuples of one common rank "
                "(Proposition 2.3.3); the machine returned mixed ranks")
        reps = {
            self.hsdb.canonical_representative(
                tuple(oracle.elements[p] for p in pos))
            for pos in output
        }
        return Value(ranks.pop(), frozenset(reps))
