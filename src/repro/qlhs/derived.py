"""Derived QLhs operators — the [CH] toolkit as macro expansions.

The completeness proof of Theorem 3.1 freely uses "the conventional
operators on relations appearing in [CH], such as if Y then P else P',
rank(e), Cartesian product, etc.", noting they "can be programmed in
QLhs precisely as is done in [CH]".  This module provides them in two
tiers:

* **true macros** — pure functions returning *core* QLhs syntax:
  union and difference (De Morgan), boolean flags as rank-0 values,
  emptiness/singleton reification into flags, if-then-else and run-once
  (the loop-with-flag technique);
* **intrinsic-based builders** — terms using ``Product``/``Permute``/
  ``SelectEq`` (themselves [CH]-definable, executed natively):
  atom selection ``σ_{(i₁..i_a) ∈ R_j}`` and projection onto arbitrary
  coordinates, the building blocks of the ``P_Q`` pipeline.

Scratch variables: macros that need temporaries take a ``fresh`` name
prefix; callers must keep prefixes disjoint from their own variables.
"""

from __future__ import annotations

from collections.abc import Sequence

from .ast import (
    Assign,
    Comp,
    Down,
    E,
    Inter,
    Permute,
    Product,
    Program,
    Rel,
    SelectEq,
    Seq,
    Swap,
    Term,
    Up,
    VarT,
    WhileEmpty,
    WhileSingleton,
    seq,
)

# ---------------------------------------------------------------------------
# Pure term macros (core QLhs only).
# ---------------------------------------------------------------------------

def union(e: Term, f: Term) -> Term:
    """``e ∪ f = ¬(¬e ∩ ¬f)`` — a genuine core expansion."""
    return Comp(Inter(Comp(e), Comp(f)))


def difference(e: Term, f: Term) -> Term:
    """``e − f = e ∩ ¬f``."""
    return Inter(e, Comp(f))


def true_flag() -> Term:
    """The rank-0 value ``{()}`` — boolean *true* — as ``E↓↓``."""
    return Down(Down(E()))


def false_flag() -> Term:
    """The empty rank-0 value — boolean *false* — as ``E↓↓ ∩ ¬E↓↓``."""
    return Inter(true_flag(), Comp(true_flag()))


def full_term(n: int) -> Term:
    """``Tⁿ`` as a term: ``(E↓↓)↑ⁿ`` — exactly the ``P_Q`` construction."""
    t: Term = true_flag()
    for __ in range(n):
        t = Up(t)
    return t


# ---------------------------------------------------------------------------
# Program macros (core QLhs only).
# ---------------------------------------------------------------------------

def set_flag_if_empty(test_var: str, flag_var: str, fresh: str) -> Program:
    """``flag ← (|test| = 0)`` reified as a rank-0 flag.

    The loop-with-escape technique: copy the tested variable to a
    scratch; the while body runs at most once (it makes the scratch
    non-empty) and runs at all only when the test held.
    """
    scratch = f"{fresh}_s"
    return seq(
        Assign(flag_var, false_flag()),
        Assign(scratch, VarT(test_var)),
        WhileEmpty(scratch, seq(
            Assign(flag_var, true_flag()),
            Assign(scratch, true_flag()),
        )),
    )


def set_flag_if_singleton(test_var: str, flag_var: str, fresh: str) -> Program:
    """``flag ← (|test| = 1)`` reified as a rank-0 flag."""
    scratch = f"{fresh}_s"
    return seq(
        Assign(flag_var, false_flag()),
        Assign(scratch, VarT(test_var)),
        WhileSingleton(scratch, seq(
            Assign(flag_var, true_flag()),
            Assign(scratch, false_flag()),
        )),
    )


def if_flag(flag_var: str, then_program: Program,
            else_program: Program | None, fresh: str) -> Program:
    """``if flag then P else P'`` — flag is a rank-0 boolean.

    Two run-once loops driven by scratch copies: the *then* loop runs
    exactly when the flag is a singleton, the *else* loop exactly when it
    started empty.
    """
    then_driver = f"{fresh}_t"
    else_driver = f"{fresh}_e"
    parts: list[Program] = [
        Assign(then_driver, VarT(flag_var)),
        Assign(else_driver, VarT(flag_var)),
        WhileSingleton(then_driver, seq(
            then_program,
            Assign(then_driver, false_flag()),
        )),
    ]
    if else_program is not None:
        parts.append(WhileEmpty(else_driver, seq(
            else_program,
            Assign(else_driver, true_flag()),
        )))
    return seq(*parts)


def if_empty(test_var: str, then_program: Program,
             else_program: Program | None, fresh: str) -> Program:
    """``if |Y| = 0 then P else P'`` as a core-QLhs expansion."""
    flag = f"{fresh}_f"
    return seq(
        set_flag_if_empty(test_var, flag, f"{fresh}_i"),
        if_flag(flag, then_program, else_program, f"{fresh}_b"),
    )


def if_singleton(test_var: str, then_program: Program,
                 else_program: Program | None, fresh: str) -> Program:
    """``if |Y| = 1 then P else P'`` as a core-QLhs expansion."""
    flag = f"{fresh}_f"
    return seq(
        set_flag_if_singleton(test_var, flag, f"{fresh}_i"),
        if_flag(flag, then_program, else_program, f"{fresh}_b"),
    )


def rank_of(source_var: str, out_var: str, fresh: str) -> Program:
    """``out ← rank(source)`` — the [CH] ``rank(e)`` operator.

    The output is a counters-as-ranks number (diagonal encoding of
    :mod:`repro.qlhs.numbers`): repeatedly project the source until its
    projection is empty, counting the steps.  ``rank`` of an *empty*
    source is 0 (there is nothing to project).  A genuine core+intrinsic
    expansion: the loop body uses only ``↓``, flags, and the increment.
    """
    from .numbers import zero_term

    probe = f"{fresh}_p"
    probe_down = f"{fresh}_pd"
    return seq(
        Assign(out_var, zero_term()),
        Assign(probe, VarT(source_var)),
        Assign(probe_down, Down(VarT(probe))),
        # While probe↓ is non-empty: probe := probe↓ ; out := out + 1.
        _rank_loop(probe, probe_down, out_var, fresh),
    )


def _rank_loop(probe: str, probe_down: str, out_var: str,
               fresh: str) -> Program:
    from .numbers import inc_term

    guard = f"{fresh}_g"
    return seq(
        set_flag_if_empty(probe_down, guard, f"{fresh}_i0"),
        WhileEmpty(guard, seq(
            Assign(probe, Down(VarT(probe))),
            Assign(out_var, inc_term(VarT(out_var))),
            Assign(probe_down, Down(VarT(probe))),
            set_flag_if_empty(probe_down, guard, f"{fresh}_i1"),
        )),
    )


def run_once(body: Program, fresh: str) -> Program:
    """Execute ``body`` exactly once via the while-with-flag idiom
    (demonstrates the technique; useful inside larger macros)."""
    driver = f"{fresh}_d"
    return seq(
        Assign(driver, false_flag()),
        WhileEmpty(driver, seq(body, Assign(driver, true_flag()))),
    )


# ---------------------------------------------------------------------------
# Intrinsic-based builders ([CH]-definable; executed natively).
# ---------------------------------------------------------------------------

def move_to_front(rank: int, positions: Sequence[int]) -> tuple[int, ...]:
    """A permutation bringing ``positions`` (distinct) to the front."""
    positions = list(positions)
    rest = [i for i in range(rank) if i not in positions]
    return tuple(positions + rest)


def drop_first_k(e: Term, k: int) -> Term:
    """``e↓ᵏ`` — project out the first ``k`` coordinates."""
    for __ in range(k):
        e = Down(e)
    return e


def project_onto(e: Term, rank: int, positions: Sequence[int]) -> Term:
    """``π_{positions}(e)`` for distinct positions, via Permute + ↓.

    Moves the unwanted coordinates to the front and drops them.
    """
    positions = list(positions)
    if len(set(positions)) != len(positions):
        raise ValueError("project_onto requires distinct positions")
    unwanted = [i for i in range(rank) if i not in positions]
    perm = tuple(unwanted + positions)
    return drop_first_k(Permute(e, perm), len(unwanted))


def select_atom(e: Term, rank: int, rel_index: int, rel_arity: int,
                positions: Sequence[int]) -> Term:
    """``σ_{(x_{i₁},…,x_{i_a}) ∈ R_j}(e)`` — positions may repeat.

    The join technique: form ``e × Rel_j`` (rank ``rank + a``), equate
    each appended coordinate with its source position, and project the
    appended coordinates away.  Every step is an intrinsic or core op.
    """
    positions = list(positions)
    if len(positions) != rel_arity:
        raise ValueError(
            f"atom on R{rel_index + 1} needs {rel_arity} positions")
    joined: Term = Product(e, Rel(rel_index))
    for t, pos in enumerate(positions):
        joined = SelectEq(joined, rank + t, pos)
    # Keep the original coordinates only.
    return project_onto(joined, rank + rel_arity, list(range(rank)))


def select_not_atom(e: Term, rank: int, rel_index: int, rel_arity: int,
                    positions: Sequence[int]) -> Term:
    """``σ_{(…) ∉ R_j}(e)`` = ``e − σ_{(…) ∈ R_j}(e)``."""
    return difference(e, select_atom(e, rank, rel_index, rel_arity, positions))


def select_equal(e: Term, i: int, j: int) -> Term:
    """``σ_{x_i = x_j}(e)`` — the SelectEq intrinsic, named RA-style."""
    return SelectEq(e, i, j)


def select_not_equal(e: Term, i: int, j: int) -> Term:
    """``σ_{x_i ≠ x_j}(e)``."""
    return difference(e, SelectEq(e, i, j))
