"""Abstract syntax of QLhs (Section 3.3).

Terms (Definition of QLhs syntax, §3.3)::

    E  |  Rel_i  |  Y_i  |  (e ∩ f)  |  (¬e)  |  (e↑)  |  (e↓)  |  (e~)

Programs::

    Y_i ← e  |  (P ; P')  |  while |Y_i| = 0 do P  |  while |Y_i| = 1 do P

The ``|Y|=1`` test is the paper's addition over the original QL: in the
infinite setting ``perm(D)`` has infinite rank, so the singleton test
cannot be derived from the emptiness test (footnote 8).

Two groups of extra term constructors are provided beyond the core:

* *macros* (see :mod:`repro.qlhs.derived`) expand to core terms/programs
  before execution — union, difference, if-then-else, flags;
* *intrinsics* — ``Product``, ``Permute``, ``SelectEq`` — are executed
  directly by the interpreter.  They are definable in core QLhs by the
  Chandra–Harel constructions ([CH], and the paper's remark that "the
  conventional operators … can be programmed in QLhs precisely as is
  done in [CH]"); we implement them natively for tractability and flag
  them with ``definable_in_core = True``.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence


class Term:
    """Base class of QLhs terms."""

    definable_in_core = True  # every node is core or [CH]-definable


@dataclass(frozen=True)
class E(Term):
    """The fixed term ``E`` = T² ∩ {(a,a) | a ∈ D} — the equality class."""


@dataclass(frozen=True)
class Rel(Term):
    """``Rel_i``: the input relation ``Cᵢ`` (0-based index)."""

    index: int


@dataclass(frozen=True)
class VarT(Term):
    """A relational variable ``Y_name`` used as a term."""

    name: str


@dataclass(frozen=True)
class Inter(Term):
    """``(e ∩ f)`` — both operands must have equal rank."""

    left: Term
    right: Term


@dataclass(frozen=True)
class Comp(Term):
    """``(¬e)`` — complement within ``Tⁿ``."""

    body: Term


@dataclass(frozen=True)
class Up(Term):
    """``(e↑)`` — all one-element tree extensions of the paths in ``e``."""

    body: Term


@dataclass(frozen=True)
class Down(Term):
    """``(e↓)`` — project out the first coordinate, canonicalized.

    Deviation note: on a rank-0 operand the paper leaves ``↓`` undefined;
    we define it as the empty rank-0 value, which realizes the proof of
    Theorem 3.1's counter arithmetic ("testing whether e is 'equal' to 0
    is accomplished by testing e↓ for emptiness") literally.
    """

    body: Term


@dataclass(frozen=True)
class Swap(Term):
    """``(e~)`` — exchange the two rightmost coordinates, canonicalized."""

    body: Term


@dataclass(frozen=True)
class Product(Term):
    """Intrinsic: the cartesian product of the denoted relations.

    Computed on representatives as
    ``{r ∈ T^{m+n} : canon(r[:m]) ∈ e and canon(r[m:]) ∈ f}`` — scanning
    the concatenated level is what makes overlapping-element classes
    (absent from naive concatenation of representatives) appear.
    Definable in core QLhs per [CH].
    """

    left: Term
    right: Term


@dataclass(frozen=True)
class Permute(Term):
    """Intrinsic: reorder coordinates by a permutation.

    ``perm[i]`` is the source coordinate of output coordinate ``i``.
    Definable in core QLhs per [CH] (from ``~``, ``↑``, ``↓``, ``E``).
    """

    body: Term
    perm: tuple[int, ...]

    def __init__(self, body: Term, perm: Sequence[int]):
        object.__setattr__(self, "body", body)
        object.__setattr__(self, "perm", tuple(perm))
        if sorted(self.perm) != list(range(len(self.perm))):
            raise ValueError(f"{self.perm!r} is not a permutation")


@dataclass(frozen=True)
class SelectEq(Term):
    """Intrinsic: keep paths whose coordinates ``i`` and ``j`` are equal.

    Negative indices count from the end (Python-style), so rank-generic
    programs — the counter encoding's increment selects the "new
    coordinate equals the previous last" child with ``(-2, -1)`` — work
    on values of any rank.  Definable in core QLhs per [CH]
    (intersection with an equality relation built from ``E`` and ``↑``).
    """

    body: Term
    i: int
    j: int


class Program:
    """Base class of QLhs programs."""


@dataclass(frozen=True)
class Assign(Program):
    """``Y ← e``."""

    var: str
    term: Term


@dataclass(frozen=True)
class Seq(Program):
    """``(P; P')`` generalized to a statement list."""

    body: tuple[Program, ...]

    def __init__(self, body: Sequence[Program]):
        flat: list[Program] = []
        for p in body:
            if isinstance(p, Seq):
                flat.extend(p.body)
            else:
                flat.append(p)
        object.__setattr__(self, "body", tuple(flat))


@dataclass(frozen=True)
class WhileEmpty(Program):
    """``while |Y| = 0 do P``."""

    var: str
    body: Program


@dataclass(frozen=True)
class WhileSingleton(Program):
    """``while |Y| = 1 do P`` — the paper's added test (footnote 8)."""

    var: str
    body: Program


def seq(*programs: Program) -> Program:
    """Sequence several statements (flattening nested sequences)."""
    if len(programs) == 1:
        return programs[0]
    return Seq(programs)


def term_uses_intrinsics(term: Term) -> bool:
    """Whether a term contains ``Product``/``Permute``/``SelectEq`` nodes.

    Lets callers distinguish strictly-core programs (benchmarked as such)
    from programs leaning on the [CH]-definable intrinsics.
    """
    if isinstance(term, (Product, Permute, SelectEq)):
        return True
    if isinstance(term, (E, Rel, VarT)):
        return False
    if isinstance(term, Inter):
        return term_uses_intrinsics(term.left) or term_uses_intrinsics(term.right)
    if isinstance(term, (Comp, Up, Down, Swap)):
        return term_uses_intrinsics(term.body)
    raise TypeError(f"unknown term {term!r}")


def program_uses_intrinsics(program: Program) -> bool:
    if isinstance(program, Assign):
        return term_uses_intrinsics(program.term)
    if isinstance(program, Seq):
        return any(program_uses_intrinsics(p) for p in program.body)
    if isinstance(program, (WhileEmpty, WhileSingleton)):
        return program_uses_intrinsics(program.body)
    raise TypeError(f"unknown program {program!r}")
