"""Pretty-printer for QLhs terms and programs.

Round-trips with :mod:`repro.qlhs.parser` for the parseable fragment
(core operators plus the ``prod`` intrinsic); ``Permute``/``SelectEq``
render in a functional notation the parser does not accept (they are
interpreter-level intrinsics built by :mod:`repro.qlhs.derived`).
"""

from __future__ import annotations

from .ast import (
    Assign,
    Comp,
    Down,
    E,
    Inter,
    Permute,
    Product,
    Program,
    Rel,
    SelectEq,
    Seq,
    Swap,
    Term,
    Up,
    VarT,
    WhileEmpty,
    WhileSingleton,
)


def term_to_text(term: Term) -> str:
    """Render a term in the concrete syntax."""
    if isinstance(term, E):
        return "E"
    if isinstance(term, Rel):
        return f"R{term.index + 1}"
    if isinstance(term, VarT):
        return term.name
    if isinstance(term, Inter):
        return (f"{_factor(term.left)} & {_factor(term.right)}")
    if isinstance(term, Comp):
        return f"!{_factor(term.body)}"
    if isinstance(term, Up):
        return f"up({term_to_text(term.body)})"
    if isinstance(term, Down):
        return f"down({term_to_text(term.body)})"
    if isinstance(term, Swap):
        return f"swap({term_to_text(term.body)})"
    if isinstance(term, Product):
        return (f"prod({term_to_text(term.left)}, "
                f"{term_to_text(term.right)})")
    if isinstance(term, Permute):
        perm = " ".join(str(i) for i in term.perm)
        return f"permute({term_to_text(term.body)}; {perm})"
    if isinstance(term, SelectEq):
        return f"seleq({term_to_text(term.body)}; {term.i}, {term.j})"
    raise TypeError(f"unknown term {term!r}")


def _factor(term: Term) -> str:
    """Parenthesize intersections appearing under tighter operators."""
    text = term_to_text(term)
    if isinstance(term, Inter):
        return f"({text})"
    return text


def program_to_text(program: Program, indent: int = 0) -> str:
    """Render a program; statements one per line, loops braced."""
    pad = "  " * indent
    if isinstance(program, Assign):
        return f"{pad}{program.var} := {term_to_text(program.term)}"
    if isinstance(program, Seq):
        return " ;\n".join(program_to_text(p, indent) for p in program.body)
    if isinstance(program, (WhileEmpty, WhileSingleton)):
        test = "0" if isinstance(program, WhileEmpty) else "1"
        body = program_to_text(program.body, indent + 1)
        return (f"{pad}while |{program.var}| = {test} do {{\n"
                f"{body}\n{pad}}}")
    raise TypeError(f"unknown program {program!r}")


def is_parseable(term_or_program) -> bool:
    """Whether the rendering is accepted by the parser (no Permute /
    SelectEq nodes)."""
    from .ast import program_uses_intrinsics, term_uses_intrinsics

    if isinstance(term_or_program, Term):
        return not _has_unparseable_term(term_or_program)
    return not _has_unparseable_program(term_or_program)


def _has_unparseable_term(term: Term) -> bool:
    if isinstance(term, (Permute, SelectEq)):
        return True
    if isinstance(term, (E, Rel, VarT)):
        return False
    if isinstance(term, Inter):
        return (_has_unparseable_term(term.left)
                or _has_unparseable_term(term.right))
    if isinstance(term, Product):
        return (_has_unparseable_term(term.left)
                or _has_unparseable_term(term.right))
    if isinstance(term, (Comp, Up, Down, Swap)):
        return _has_unparseable_term(term.body)
    raise TypeError(f"unknown term {term!r}")


def _has_unparseable_program(program: Program) -> bool:
    if isinstance(program, Assign):
        return _has_unparseable_term(program.term)
    if isinstance(program, Seq):
        return any(_has_unparseable_program(p) for p in program.body)
    if isinstance(program, (WhileEmpty, WhileSingleton)):
        return _has_unparseable_program(program.body)
    raise TypeError(f"unknown program {program!r}")
