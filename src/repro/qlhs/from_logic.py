"""Compiling first-order formulas into QLhs terms (calculus → algebra).

The classical calculus/algebra equivalence, executable over *infinite*
highly symmetric databases: a formula ``φ(x₁,…,xₙ)`` compiles to a QLhs
term denoting ``{(a₁,…,aₙ) : B ⊨ φ(ā)}`` as class representatives.

* atoms become selections over ``Tⁿ`` (``select_atom`` / ``SelectEq``,
  the [CH]-definable intrinsics);
* boolean connectives become ``∩`` / union / complement;
* ``∃y`` becomes "move y's coordinate to the front, project it out"
  (``Permute`` + ``↓``), and ``∀y`` is its dual through complements.

This closes a triangle the tests exploit: the same relation computed by
(1) the Theorem 6.3 relativized evaluator, (2) the Theorem 3.1 ``P_Q``
pipeline, and (3) a compiled QLhs term must coincide representative for
representative.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..errors import TypeSignatureError
from ..logic.syntax import (
    And,
    Eq,
    Exists,
    FalseF,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    RelAtom,
    TrueF,
    Var,
)
from ..logic.transform import free_variables, validate
from .ast import Comp, Down, Inter, Permute, SelectEq, Term
from .derived import full_term, select_atom, union
from .interpreter import QLhsInterpreter, Value


def compile_formula(formula: Formula, variables: Sequence[Var],
                    signature: Sequence[int]) -> Term:
    """Compile ``φ`` with the given free-variable order into a term.

    The resulting term has rank ``len(variables)``; coordinate ``i``
    carries ``variables[i]``.
    """
    variables = list(variables)
    if len(set(variables)) != len(variables):
        raise ValueError("variable order must be duplicate-free")
    extra = free_variables(formula) - set(variables)
    if extra:
        raise TypeSignatureError(
            f"formula has free variables "
            f"{sorted(v.name for v in extra)} outside the given order")
    validate(formula, signature)
    return _compile(formula, variables, tuple(signature))


def _compile(formula: Formula, scope: list[Var],
             signature: tuple[int, ...]) -> Term:
    n = len(scope)
    if isinstance(formula, TrueF):
        return full_term(n)
    if isinstance(formula, FalseF):
        return Comp(full_term(n))
    if isinstance(formula, Eq):
        return SelectEq(full_term(n), scope.index(formula.left),
                        scope.index(formula.right))
    if isinstance(formula, RelAtom):
        positions = [scope.index(a) for a in formula.args]
        return select_atom(full_term(n), n, formula.index,
                           signature[formula.index], positions)
    if isinstance(formula, Not):
        return Comp(_compile(formula.body, scope, signature))
    if isinstance(formula, And):
        parts = [_compile(c, scope, signature) for c in formula.children]
        out = parts[0] if parts else full_term(n)
        for p in parts[1:]:
            out = Inter(out, p)
        return out
    if isinstance(formula, Or):
        parts = [_compile(c, scope, signature) for c in formula.children]
        out = parts[0] if parts else Comp(full_term(n))
        for p in parts[1:]:
            out = union(out, p)
        return out
    if isinstance(formula, Implies):
        return union(Comp(_compile(formula.left, scope, signature)),
                     _compile(formula.right, scope, signature))
    if isinstance(formula, Exists):
        return _compile_exists(formula.var, formula.body, scope, signature)
    if isinstance(formula, Forall):
        # ∀y φ = ¬∃y ¬φ.
        inner = _compile_exists(formula.var, Not(formula.body), scope,
                                signature)
        return Comp(inner)
    raise TypeError(f"unknown formula node {formula!r}")


def _compile_exists(var: Var, body: Formula, scope: list[Var],
                    signature: tuple[int, ...]) -> Term:
    if var in scope:
        # Shadowing: rebind under a fresh name to keep positions unique.
        from ..logic.transform import substitute
        fresh = Var(f"{var.name}~{len(scope)}")
        body = substitute(body, {var: fresh})
        var = fresh
    inner_scope = scope + [var]
    inner = _compile(body, inner_scope, signature)
    # The bound variable occupies the last coordinate: rotate it to the
    # front and project it out.
    n = len(inner_scope)
    rotation = tuple([n - 1] + list(range(n - 1)))
    return Down(Permute(inner, rotation))


def evaluate_via_algebra(interpreter: QLhsInterpreter, formula: Formula,
                         variables: Sequence[Var]) -> Value:
    """Compile and run: the relation ``φ`` defines, as representatives."""
    term = compile_formula(formula, variables, interpreter.hsdb.signature)
    return interpreter.eval_term(term, {})


def sentence_via_algebra(interpreter: QLhsInterpreter,
                         sentence: Formula) -> bool:
    """Decide a sentence by compiling to a rank-0 term: true iff the
    denoted rank-0 relation is ``{()}``."""
    value = evaluate_via_algebra(interpreter, sentence, [])
    return not value.is_empty
