"""Counters-as-ranks: natural numbers inside QLhs (Theorem 3.1 proof).

"QLhs can be thought of as having counters: E↓↓ plays the role of 0, and
if e plays the role of the natural number i, then e↑ and e↓ play the
role of i+1 and i−1, respectively.  Testing whether e is 'equal' to 0 is
accomplished by testing e↓ for emptiness."

The paper only needs the *rank* of a value to carry the number; the
contents are irrelevant.  Implemented naively (``↑`` = all children),
values balloon with the tree's level sizes, so this module uses the
**diagonal encoding**, which keeps the rank semantics and bounds value
sizes by ``|T¹|``:

* the number ``k`` is a non-empty value of rank ``k + 1`` whose paths
  are *diagonals* (all coordinates equal);
* ``0`` is ``E↓`` (the rank-1 representatives of the all-equal pair's
  projections);
* ``i + 1`` is ``SelectEq(e↑, −2, −1)`` — of all children, keep exactly
  the "new coordinate equals the last" extension, which every
  characteristic tree represents literally (a representative of that
  class is a member of it, so its last two labels are equal);
* ``i − 1`` is ``e↓``, and the zero test is "is ``e↓↓`` empty" — the
  paper's test shifted by the +1 offset (``↓`` of the rank-0 value is
  empty by the interpreter's documented convention).

``decode_number(value) = value.rank − 1``.
"""

from __future__ import annotations

from ..errors import RankMismatchError
from .ast import Assign, Down, E, Program, SelectEq, Term, Up, VarT, seq
from .derived import set_flag_if_empty
from .interpreter import Value


def zero_term() -> Term:
    """The number 0: ``E↓`` — rank 1, all diagonal projections."""
    return Down(E())


def inc_term(e: Term) -> Term:
    """``i + 1``: the diagonal children of ``e``'s paths."""
    return SelectEq(Up(e), -2, -1)


def dec_term(e: Term) -> Term:
    """``i − 1`` as ``e↓``.  Decrementing 0 yields the rank-0 value
    (still non-empty); counter-machine semantics guard with a zero test
    first, as :mod:`repro.qlhs.counter_compile` does."""
    return Down(e)


def constant_term(k: int) -> Term:
    """The number ``k``: zero incremented ``k`` times."""
    if k < 0:
        raise ValueError("counters hold naturals")
    t = zero_term()
    for __ in range(k):
        t = inc_term(t)
    return t


def assign_constant(var: str, k: int) -> Program:
    """``var ← k``."""
    return Assign(var, constant_term(k))


def zero_test(number_var: str, flag_var: str, fresh: str) -> Program:
    """``flag ← (var == 0)``: test ``var↓↓`` for emptiness.

    A number k has rank k+1; two projections reach rank k−1 — empty
    exactly when k = 0 (projecting "past" rank 0).
    """
    probe = f"{fresh}_z"
    return seq(
        Assign(probe, Down(Down(VarT(number_var)))),
        set_flag_if_empty(probe, flag_var, f"{fresh}_zf"),
    )


def decode_number(value: Value) -> int:
    """Read a number back: ``rank − 1``.  Raises on invalid encodings."""
    if value.is_empty:
        raise RankMismatchError(
            "an empty value does not encode a number (the encoding "
            "invariant requires non-emptiness)")
    if value.rank < 1:
        raise RankMismatchError(
            "number encoding uses ranks >= 1 (the diagonal encoding's "
            "+1 offset); got a rank-0 value")
    return value.rank - 1
