"""Concrete syntax for QLhs programs.

An ASCII rendering of the paper's notation::

    Y1 := up(E) & !R1 ;
    while |Y2| = 0 do {
        Y2 := down(swap(Y1))
    }

Grammar::

    program  := stmt { ';' stmt }
    stmt     := VAR ':=' term
              | 'while' '|' VAR '|' '=' ('0' | '1') 'do' '{' program '}'
    term     := factor { '&' factor }          (intersection)
    factor   := '!' factor                     (complement)
              | 'up' '(' term ')'
              | 'down' '(' term ')'
              | 'swap' '(' term ')'
              | 'prod' '(' term ',' term ')'   (intrinsic)
              | 'E'
              | RELNAME                        (R1, R2, …)
              | VAR
              | '(' term ')'
"""

from __future__ import annotations

import re

from ..errors import ParseError
from .ast import (
    Assign,
    Comp,
    Down,
    E,
    Inter,
    Product,
    Program,
    Rel,
    Seq,
    Swap,
    Term,
    Up,
    VarT,
    WhileEmpty,
    WhileSingleton,
)

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+|\#[^\n]*)
  | (?P<assign>:=)
  | (?P<eq>=)
  | (?P<bar>\|)
  | (?P<amp>&)
  | (?P<bang>!)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<lbrace>\{)
  | (?P<rbrace>\})
  | (?P<semi>;)
  | (?P<comma>,)
  | (?P<num>\d+)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
""", re.VERBOSE)

_KEYWORDS = {"while", "do", "up", "down", "swap", "prod", "E"}
_REL_RE = re.compile(r"^R(\d+)$")


class _Tokens:
    def __init__(self, text: str):
        self.text = text
        self.items: list[tuple[str, str, int]] = []
        pos = 0
        while pos < len(text):
            m = _TOKEN_RE.match(text, pos)
            if m is None:
                raise ParseError(f"unexpected character {text[pos]!r}", pos)
            if (m.lastgroup or "") != "ws":
                self.items.append((m.lastgroup or "", m.group(), pos))
            pos = m.end()
        self.index = 0

    def peek(self):
        return self.items[self.index] if self.index < len(self.items) else None

    def next(self):
        item = self.peek()
        if item is None:
            raise ParseError("unexpected end of input", len(self.text))
        self.index += 1
        return item

    def expect(self, kind: str, value: str | None = None):
        item = self.next()
        if item[0] != kind or (value is not None and item[1] != value):
            raise ParseError(
                f"expected {value or kind}, found {item[1]!r}", item[2])
        return item

    def at(self, kind: str, value: str | None = None) -> bool:
        item = self.peek()
        return (item is not None and item[0] == kind
                and (value is None or item[1] == value))

    def done(self) -> bool:
        return self.index >= len(self.items)


def parse_program(text: str) -> Program:
    """Parse a QLhs program."""
    tokens = _Tokens(text)
    program = _program(tokens)
    if not tokens.done():
        __, value, pos = tokens.next()
        raise ParseError(f"trailing input starting at {value!r}", pos)
    return program


def parse_term(text: str) -> Term:
    """Parse a single QLhs term."""
    tokens = _Tokens(text)
    term = _term(tokens)
    if not tokens.done():
        __, value, pos = tokens.next()
        raise ParseError(f"trailing input starting at {value!r}", pos)
    return term


def _program(tokens: _Tokens) -> Program:
    stmts = [_stmt(tokens)]
    while tokens.at("semi"):
        tokens.next()
        if tokens.at("rbrace") or tokens.done():
            break  # tolerate a trailing semicolon
        stmts.append(_stmt(tokens))
    return stmts[0] if len(stmts) == 1 else Seq(stmts)


def _stmt(tokens: _Tokens) -> Program:
    if tokens.at("name", "while"):
        tokens.next()
        tokens.expect("bar")
        __, var, vpos = tokens.expect("name")
        _check_var(var, vpos)
        tokens.expect("bar")
        tokens.expect("eq")
        __, num, npos = tokens.expect("num")
        if num not in ("0", "1"):
            raise ParseError("while tests are |Y| = 0 or |Y| = 1", npos)
        tokens.expect("name", "do")
        tokens.expect("lbrace")
        body = _program(tokens)
        tokens.expect("rbrace")
        node = WhileEmpty if num == "0" else WhileSingleton
        return node(var, body)
    __, var, vpos = tokens.expect("name")
    _check_var(var, vpos)
    tokens.expect("assign")
    return Assign(var, _term(tokens))


def _term(tokens: _Tokens) -> Term:
    left = _factor(tokens)
    while tokens.at("amp"):
        tokens.next()
        left = Inter(left, _factor(tokens))
    return left


def _factor(tokens: _Tokens) -> Term:
    if tokens.at("bang"):
        tokens.next()
        return Comp(_factor(tokens))
    kind, value, pos = tokens.next()
    if kind == "lparen":
        inner = _term(tokens)
        tokens.expect("rparen")
        return inner
    if kind != "name":
        raise ParseError(f"expected a term, found {value!r}", pos)
    if value == "E":
        return E()
    if value in ("up", "down", "swap"):
        tokens.expect("lparen")
        inner = _term(tokens)
        tokens.expect("rparen")
        return {"up": Up, "down": Down, "swap": Swap}[value](inner)
    if value == "prod":
        tokens.expect("lparen")
        left = _term(tokens)
        tokens.expect("comma")
        right = _term(tokens)
        tokens.expect("rparen")
        return Product(left, right)
    rel = _REL_RE.match(value)
    if rel is not None:
        index = int(rel.group(1)) - 1
        if index < 0:
            raise ParseError("relation names are 1-based (R1, R2, …)", pos)
        return Rel(index)
    _check_var(value, pos)
    return VarT(value)


def _check_var(name: str, pos: int) -> None:
    if name in _KEYWORDS:
        raise ParseError(f"{name!r} is reserved and cannot be a variable", pos)
    if _REL_RE.match(name):
        raise ParseError(
            f"{name!r} is a relation name and cannot be a variable", pos)
