"""Compiling counter machines into core QLhs (Theorem 3.1's key step).

The proof of Theorem 3.1 rests on QLhs having "the power of general
counter machines (and hence of Turing machines), with numbers
represented by the ranks of the relations in the variables".  This
module makes the claim executable: any
:class:`~repro.machines.counter.CounterMachine` compiles into a QLhs
program (core operators plus the flag/if macros, which themselves expand
to core), and running the compiled program on any hs-r-db computes the
same register contents, numbers read back as ranks.

Compilation scheme
------------------
* register ``i``  → variable ``Ri_`` holding a rank-encoded number;
* program counter → variable ``PC`` holding a rank-encoded number;
* one sweep of the main loop dispatches on ``PC = k`` for every
  instruction index ``k`` (the tests are mutually exclusive, and the
  next PC is staged in ``PCN`` so later guards never fire in the same
  sweep);
* the machine halts by setting ``HALT`` to a non-empty flag, ending the
  ``while |HALT| = 0`` driver loop.

``PC = k`` is decided by copying ``PC``, decrementing ``k`` times, and
testing "is exactly zero": the probe's ``↓`` is empty *and* the probe is
itself non-empty (a probe that went past zero is empty, a probe still
positive has non-empty ``↓``).
"""

from __future__ import annotations

from ..errors import MachineError
from ..machines.counter import (
    CounterMachine,
    Dec,
    Halt,
    Inc,
    Jmp,
    Jz,
)
from .ast import Assign, Down, Program, VarT, WhileEmpty, seq
from .derived import (
    false_flag,
    if_flag,
    set_flag_if_empty,
    true_flag,
)
from .interpreter import QLhsInterpreter, Value
from .numbers import constant_term, decode_number, inc_term, zero_test

HALT_VAR = "HALT"
PC_VAR = "PC"
PC_NEXT_VAR = "PCN"


def register_var(i: int) -> str:
    return f"Rg{i}"


def _pc_equals(k: int, flag_var: str, fresh: str) -> Program:
    """``flag ← (PC == k)`` via copy, k decrements, exact-zero test."""
    probe = f"{fresh}_p"
    down_flag = f"{fresh}_d"
    nonempty_flag = f"{fresh}_n"
    steps: list[Program] = [Assign(probe, VarT(PC_VAR))]
    for j in range(k):
        steps.append(Assign(probe, Down(VarT(probe))))
    # PC == k leaves the probe at rank exactly 1 (the diagonal encoding's
    # zero): probe↓↓ empty AND probe↓ non-empty.  A probe that went past
    # zero decays through the non-empty rank-0 value to empty, so both
    # halves are needed: ↓↓-empty alone also accepts PC == k−1 (probe at
    # rank 0), which the ↓-non-empty half rejects.
    probe_down2 = f"{fresh}_pd"
    steps.append(Assign(probe_down2, Down(Down(VarT(probe)))))
    steps.append(set_flag_if_empty(probe_down2, down_flag, f"{fresh}_e1"))
    probe_down1 = f"{fresh}_p1"
    probe_empty = f"{fresh}_pe"
    steps.append(Assign(probe_down1, Down(VarT(probe))))
    steps.append(set_flag_if_empty(probe_down1, probe_empty, f"{fresh}_e2"))
    steps.append(Assign(nonempty_flag, false_flag()))
    steps.append(if_flag(probe_empty,
                         Assign(nonempty_flag, false_flag()),
                         Assign(nonempty_flag, true_flag()),
                         f"{fresh}_b1"))
    # flag := down_flag AND nonempty_flag  (both are rank-0: intersection)
    from .ast import Inter
    steps.append(Assign(flag_var, Inter(VarT(down_flag),
                                        VarT(nonempty_flag))))
    return seq(*steps)


def _guarded(k: int, body: Program, fresh: str) -> Program:
    """Run ``body`` iff ``PC == k``."""
    flag = f"{fresh}_g"
    return seq(
        _pc_equals(k, flag, fresh),
        if_flag(flag, body, None, f"{fresh}_if"),
    )


def _instruction_body(ins, k: int, fresh: str) -> Program:
    """The staged effect of one instruction (next PC goes to PCN)."""
    fall_through = Assign(PC_NEXT_VAR, constant_term(k + 1))
    if isinstance(ins, Halt):
        return Assign(HALT_VAR, true_flag())
    if isinstance(ins, Inc):
        reg = register_var(ins.reg)
        return seq(Assign(reg, inc_term(VarT(reg))), fall_through)
    if isinstance(ins, Dec):
        reg = register_var(ins.reg)
        zflag = f"{fresh}_z"
        return seq(
            zero_test(reg, zflag, f"{fresh}_zt"),
            if_flag(zflag,
                    seq(),  # dec of 0 is a no-op (machine semantics)
                    Assign(reg, Down(VarT(reg))),
                    f"{fresh}_zi"),
            fall_through,
        )
    if isinstance(ins, Jz):
        reg = register_var(ins.reg)
        zflag = f"{fresh}_z"
        return seq(
            zero_test(reg, zflag, f"{fresh}_zt"),
            if_flag(zflag,
                    Assign(PC_NEXT_VAR, constant_term(ins.target)),
                    fall_through,
                    f"{fresh}_zi"),
        )
    if isinstance(ins, Jmp):
        return Assign(PC_NEXT_VAR, constant_term(ins.target))
    raise MachineError(f"unknown instruction {ins!r}")


def compile_counter_machine(machine: CounterMachine) -> Program:
    """Compile a counter machine into a QLhs program.

    Input registers are expected pre-loaded (see :func:`load_inputs`);
    after the program ends, register values decode via
    :func:`~repro.qlhs.numbers.decode_number`.
    """
    sweep: list[Program] = [Assign(PC_NEXT_VAR, VarT(PC_VAR))]
    for k, ins in enumerate(machine.instructions):
        fresh = f"s{k}"
        sweep.append(_guarded(k, _instruction_body(ins, k, fresh), fresh))
    sweep.append(Assign(PC_VAR, VarT(PC_NEXT_VAR)))

    return seq(
        Assign(HALT_VAR, false_flag()),
        Assign(PC_VAR, constant_term(0)),
        WhileEmpty(HALT_VAR, seq(*sweep)),
    )


def load_inputs(machine: CounterMachine, inputs: list[int]) -> Program:
    """Initialization program: registers ← inputs (missing ones ← 0)."""
    steps = []
    for i in range(machine.num_registers):
        value = inputs[i] if i < len(inputs) else 0
        steps.append(Assign(register_var(i), constant_term(value)))
    return seq(*steps)


def run_compiled(machine: CounterMachine, inputs: list[int],
                 interpreter: QLhsInterpreter) -> list[int]:
    """Compile, execute on the given hs-r-db, and decode all registers."""
    program = seq(load_inputs(machine, inputs),
                  compile_counter_machine(machine))
    store = interpreter.execute(program)
    return [decode_number(store[register_var(i)])
            for i in range(machine.num_registers)]
