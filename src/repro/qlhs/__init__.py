"""QLhs — the complete query language for hs-r-dbs (Section 3.3).

Syntax (:mod:`~repro.qlhs.ast`, :mod:`~repro.qlhs.parser`), semantics
over the ``CB`` representation (:mod:`~repro.qlhs.interpreter`), the
[CH] derived-operator toolkit (:mod:`~repro.qlhs.derived`), counters as
ranks with a counter-machine compiler proving the Turing-power step of
Theorem 3.1 (:mod:`~repro.qlhs.numbers`,
:mod:`~repro.qlhs.counter_compile`), and the full ``P_Q`` completeness
pipeline (:mod:`~repro.qlhs.completeness`).
"""

from .ast import (
    Assign,
    Comp,
    Down,
    E,
    Inter,
    Permute,
    Product,
    Program,
    Rel,
    SelectEq,
    Seq,
    Swap,
    Term,
    Up,
    VarT,
    WhileEmpty,
    WhileSingleton,
    program_uses_intrinsics,
    seq,
    term_uses_intrinsics,
)
from .completeness import (
    ModelOracle,
    PQPipeline,
    compute_v_n,
    compute_v_n_0,
    compute_v_n_r,
    encode_n_model,
    find_d_qlhs,
    full_level_value,
    project_blocks,
)
from .counter_compile import (
    compile_counter_machine,
    load_inputs,
    register_var,
    run_compiled,
)
from .from_logic import (
    compile_formula,
    evaluate_via_algebra,
    sentence_via_algebra,
)
from .derived import (
    difference,
    rank_of,
    drop_first_k,
    false_flag,
    full_term,
    if_empty,
    if_flag,
    if_singleton,
    move_to_front,
    project_onto,
    run_once,
    select_atom,
    select_equal,
    select_not_atom,
    select_not_equal,
    set_flag_if_empty,
    set_flag_if_singleton,
    true_flag,
    union,
)
from .interpreter import QLhsInterpreter, Value, empty_value
from .numbers import (
    assign_constant,
    constant_term,
    dec_term,
    decode_number,
    inc_term,
    zero_term,
    zero_test,
)
from .parser import parse_program, parse_term
from .printer import is_parseable, program_to_text, term_to_text

__all__ = [
    "Assign", "Comp", "Down", "E", "Inter", "PQPipeline", "Permute",
    "ModelOracle", "Product", "Program", "QLhsInterpreter", "Rel", "SelectEq", "Seq",
    "Swap", "Term", "Up", "Value", "VarT", "WhileEmpty", "WhileSingleton",
    "assign_constant", "compile_counter_machine", "compute_v_n",
    "compute_v_n_0", "compute_v_n_r", "constant_term", "dec_term",
    "decode_number", "difference", "drop_first_k", "empty_value",
    "encode_n_model", "false_flag", "find_d_qlhs", "full_level_value",
    "full_term", "if_empty", "if_flag", "if_singleton", "inc_term",
    "is_parseable", "program_to_text", "term_to_text",
    "compile_formula", "evaluate_via_algebra", "sentence_via_algebra",
    "load_inputs", "move_to_front", "parse_program", "parse_term",
    "program_uses_intrinsics", "project_blocks", "project_onto", "rank_of",
    "register_var", "run_compiled", "run_once", "select_atom",
    "select_equal", "select_not_atom", "select_not_equal", "seq",
    "set_flag_if_empty", "set_flag_if_singleton", "term_uses_intrinsics",
    "true_flag", "union", "zero_term", "zero_test",
]
