"""``repro.trace`` — hierarchical tracing and unified resource budgets.

The observability and governance substrate every interpreter in the
library executes under:

* :mod:`repro.trace.budget` — :class:`Budget`: max steps, max oracle
  questions, wall-clock deadline, cooperative :meth:`Budget.cancel`;
  the :func:`as_budget` shim that keeps the historical ``fuel=``
  integers working as deprecated aliases;
* :mod:`repro.trace.limits` — the single registry of every default
  budget in the library (rendered as ``docs/limits.md`` and
  cross-checked by a unit test);
* :mod:`repro.trace.spans` — hierarchical :func:`span` regions with a
  thread-local stack, monotonic timings, and counters (interpreter
  steps, oracle questions, cache hits);
* :mod:`repro.trace.recorder` — the ring-buffer :class:`TraceRecorder`
  and the :class:`Trace` snapshot with JSON-lines export.

Quick use::

    from repro.trace import Budget, TraceRecorder, recording

    recorder = TraceRecorder()
    with recording(recorder):
        engine.eval(plan, budget=Budget(max_steps=10_000, deadline=2.0))
    print(recorder.trace().to_jsonl())

Divergence contract (see ``docs/limits.md``): a tripped budget raises
:class:`~repro.errors.OutOfFuel` with a machine-readable ``reason``
(``out_of_fuel`` / ``deadline`` / ``cancelled``); ``Engine.eval``
converts it into ``Verdict.UNKNOWN`` so callers get a sound partial
answer instead of an exception.
"""

from .budget import (
    CANCELLED,
    DEADLINE,
    OUT_OF_FUEL,
    REASONS,
    Budget,
    as_budget,
)
from .recorder import Trace, TraceRecorder
from .spans import (
    NULL_SPAN,
    Span,
    active_recorder,
    add_counter,
    current_span,
    install,
    propagate_span,
    recording,
    replay_records,
    span,
    under_span,
    uninstall,
)

__all__ = [
    "CANCELLED",
    "DEADLINE",
    "NULL_SPAN",
    "OUT_OF_FUEL",
    "REASONS",
    "Budget",
    "Span",
    "Trace",
    "TraceRecorder",
    "active_recorder",
    "add_counter",
    "as_budget",
    "current_span",
    "install",
    "propagate_span",
    "recording",
    "replay_records",
    "span",
    "under_span",
    "uninstall",
]
