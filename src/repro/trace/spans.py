"""Hierarchical spans: the library's tracing primitive.

A *span* is one timed region of work — an engine evaluation, a QLhs
program run, a GMhs loading stage — with a name, free-form attributes,
monotonic start/duration, integer counters (interpreter steps, oracle
questions, cache hits), and a parent: spans opened while another span
is open nest under it, forming the tree a JSONL trace serializes.

The span stack is **thread-local**; the active
:class:`~repro.trace.recorder.TraceRecorder` is process-global
(installed with :func:`install` / the :func:`recording` context
manager).  When no recorder is installed, :func:`span` returns a
shared no-op context manager — tracing then costs one global read and
one truthiness test per call site, which is what keeps the E16
overhead budget at ~0%.

Because the stack is thread-local, work submitted to a
:class:`~concurrent.futures.ThreadPoolExecutor` would start a *fresh*
stack and its spans would surface as orphan roots.  :func:`under_span`
(adopt a captured parent for a block) and :func:`propagate_span` (wrap
a callable with the submitting thread's current span) carry the
hierarchy across the pool boundary — the engine's parallel batch path
uses them so ``--trace`` trees keep their ``engine.batch_contains``
parent.  A propagated parent is used for *parentage only*: mutate
(``count``/``set``) a span only from the thread that opened it.

Doctest::

    >>> from repro.trace import TraceRecorder, recording, span
    >>> rec = TraceRecorder()
    >>> with recording(rec):
    ...     with span("outer", query="Q1") as outer:
    ...         with span("inner") as inner:
    ...             inner.count("steps", 41)
    ...             inner.count("steps")
    >>> trace = rec.trace()
    >>> [s.name for s in trace.ordered()]      # start order
    ['outer', 'inner']
    >>> outer, inner = trace.ordered()
    >>> inner.counters["steps"]
    42
    >>> inner.parent_id == outer.span_id
    True
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from ..errors import OutOfFuel

#: Span status values: ``ok``, ``error``, or a budget reason
#: (``out_of_fuel`` / ``deadline`` / ``cancelled``).
STATUS_OK = "ok"
STATUS_ERROR = "error"

_ids = itertools.count(1)


@dataclass
class Span:
    """One finished or in-flight traced region."""

    name: str
    attrs: dict = field(default_factory=dict)
    span_id: int = 0
    parent_id: int | None = None
    depth: int = 0
    start: float = 0.0
    duration: float | None = None
    status: str = STATUS_OK
    counters: dict = field(default_factory=dict)

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to this span's integer counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + n

    def set(self, **attrs) -> None:
        """Attach (or overwrite) attributes on this span."""
        self.attrs.update(attrs)

    def to_record(self, epoch: float = 0.0) -> dict:
        """A JSON-safe dict (one JSONL line), times in µs from ``epoch``."""
        record = {
            "id": self.span_id,
            "parent": self.parent_id,
            "depth": self.depth,
            "name": self.name,
            "start_us": int((self.start - epoch) * 1e6),
            "dur_us": (None if self.duration is None
                       else int(self.duration * 1e6)),
            "status": self.status,
        }
        if self.attrs:
            record["attrs"] = {k: _json_safe(v)
                               for k, v in self.attrs.items()}
        if self.counters:
            record["counters"] = dict(self.counters)
        return record


def _json_safe(value):
    """Coerce an attribute value to something ``json.dumps`` accepts."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


class _NullSpan:
    """The do-nothing span handed out while no recorder is installed."""

    __slots__ = ()

    def count(self, name: str, n: int = 1) -> None:
        """No-op counter."""

    def set(self, **attrs) -> None:
        """No-op attribute setter."""


NULL_SPAN = _NullSpan()


class _NullSpanCM:
    """A reusable, stateless no-op context manager (zero allocation)."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc) -> None:
        return None


_NULL_CM = _NullSpanCM()


class _State(threading.local):
    """Per-thread span stack."""

    def __init__(self):
        self.stack: list[Span] = []


_state = _State()
_recorder = None  # the process-global active recorder (or None)


def install(recorder) -> None:
    """Make ``recorder`` the process-global trace sink."""
    global _recorder
    _recorder = recorder


def uninstall() -> None:
    """Remove the active recorder; :func:`span` reverts to the no-op."""
    global _recorder
    _recorder = None


def active_recorder():
    """The installed recorder, or ``None``."""
    return _recorder


@contextmanager
def recording(recorder):
    """Install ``recorder`` for the duration of a ``with`` block."""
    previous = _recorder
    install(recorder)
    try:
        yield recorder
    finally:
        install(previous)


class _SpanCM:
    """The live span context manager (only built when recording)."""

    __slots__ = ("_span",)

    def __init__(self, name: str, attrs: dict):
        self._span = Span(name=name, attrs=attrs)

    def __enter__(self) -> Span:
        sp = self._span
        stack = _state.stack
        sp.span_id = next(_ids)
        if stack:
            sp.parent_id = stack[-1].span_id
            # Relative to the enclosing span, not the local stack size:
            # a worker thread adopting a propagated parent (see
            # ``under_span``) has a short stack but a deep ancestry.
            sp.depth = stack[-1].depth + 1
        sp.start = time.monotonic()
        stack.append(sp)
        return sp

    def __exit__(self, exc_type, exc, tb) -> None:
        sp = self._span
        sp.duration = time.monotonic() - sp.start
        stack = _state.stack
        if stack and stack[-1] is sp:
            stack.pop()
        if exc is not None:
            if isinstance(exc, OutOfFuel):
                # The budget tripped inside this span; record the
                # machine-readable reason so the JSONL trace shows
                # exactly where the divergence guard fired.
                sp.status = exc.reason
            else:
                sp.status = STATUS_ERROR
        recorder = _recorder
        if recorder is not None:
            recorder.record(sp)
        return None


def span(name: str, **attrs):
    """Open a traced region: ``with span("engine.eval", db=name) as sp:``.

    Returns a context manager yielding the :class:`Span` (so the body
    can ``sp.count(...)`` / ``sp.set(...)``).  When no recorder is
    installed the shared no-op context manager is returned instead.
    """
    if _recorder is None:
        return _NULL_CM
    return _SpanCM(name, attrs)


def current_span():
    """The innermost open span on this thread (or the no-op span)."""
    stack = _state.stack
    return stack[-1] if stack else NULL_SPAN


def add_counter(name: str, n: int = 1) -> None:
    """Add ``n`` to counter ``name`` on the innermost open span."""
    current_span().count(name, n)


@contextmanager
def under_span(parent):
    """Adopt ``parent`` as this thread's enclosing span for a block.

    The cross-thread propagation primitive: capture
    :func:`current_span` on the submitting thread, then run the worker
    body ``with under_span(parent):`` so spans it opens nest under the
    submitter's span instead of surfacing as orphan roots.  ``parent``
    may be ``None`` or the no-op span (both make this a no-op), so the
    capture works whether or not a recorder is installed.  The parent
    is adopted for *parentage only* — it is not re-recorded, and its
    duration keeps running on the owning thread.
    """
    if parent is None or parent is NULL_SPAN:
        yield
        return
    stack = _state.stack
    stack.append(parent)
    try:
        yield
    finally:
        if stack and stack[-1] is parent:
            stack.pop()


def replay_records(records, parent=None, *, base_start: float | None = None):
    """Re-record spans serialized in *another process* under ``parent``.

    The cross-process half of the :func:`propagate_span` contract
    (:mod:`repro.engine.shard`): a worker process traces into its own
    private recorder, serializes the spans with :meth:`Span.to_record`
    (times in µs from the worker's task epoch), and ships them back;
    the coordinator calls this at the join.  Each record becomes a
    fresh local :class:`Span` with a **new** span id (worker ids live
    in a different process and would collide), internal parent links
    are remapped, worker roots are re-parented under ``parent``, and
    depths are shifted so the replayed subtree nests where the shard
    was dispatched.  ``base_start`` anchors the worker's relative
    timestamps on this process's monotonic clock (defaults to "now").

    No-op (returns ``[]``) when no recorder is installed.  Returns the
    replayed spans in record order.

    Doctest::

        >>> from repro.trace import TraceRecorder, recording, span
        >>> worker_rec = TraceRecorder()
        >>> with recording(worker_rec):
        ...     with span("shard.task") as sp:
        ...         sp.count("steps", 3)
        >>> records = [s.to_record() for s in worker_rec.trace().ordered()]
        >>> rec = TraceRecorder()
        >>> with recording(rec):
        ...     with span("coordinator") as root:
        ...         _ = replay_records(records, root)
        >>> [(s.name, s.depth) for s in rec.trace().ordered()]
        [('coordinator', 0), ('shard.task', 1)]
    """
    recorder = _recorder
    if recorder is None or not records:
        return []
    if parent is NULL_SPAN:
        parent = None
    base = time.monotonic() if base_start is None else base_start
    offset = 0 if parent is None else parent.depth + 1
    root_depth = min(rec.get("depth", 0) for rec in records)
    fresh: dict[int, Span] = {}
    replayed = []
    for rec in records:
        sp = Span(name=rec["name"],
                  attrs=dict(rec.get("attrs", {})),
                  counters=dict(rec.get("counters", {})))
        sp.span_id = next(_ids)
        sp.depth = offset + rec.get("depth", 0) - root_depth
        sp.start = base + rec.get("start_us", 0) / 1e6
        dur = rec.get("dur_us")
        sp.duration = None if dur is None else dur / 1e6
        sp.status = rec.get("status", STATUS_OK)
        fresh[rec["id"]] = sp
        replayed.append(sp)
    for rec, sp in zip(records, replayed):
        worker_parent = rec.get("parent")
        if worker_parent in fresh:
            sp.parent_id = fresh[worker_parent].span_id
        elif parent is not None:
            sp.parent_id = parent.span_id
        recorder.record(sp)
    return replayed


def propagate_span(fn):
    """Wrap ``fn`` to run under the *submitting* thread's current span.

    Capture happens now (at wrap time, on the thread calling
    ``propagate_span``); the returned callable replays that span as
    the enclosing parent wherever it executes — typically inside a
    :class:`~concurrent.futures.ThreadPoolExecutor` worker::

        task = propagate_span(work)
        pool.map(task, items)     # worker spans nest under this span
    """
    stack = _state.stack
    parent = stack[-1] if stack else None

    def runner(*args, **kwargs):
        with under_span(parent):
            return fn(*args, **kwargs)

    return runner
