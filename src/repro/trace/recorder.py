"""Trace sinks: the ring-buffer recorder and the JSONL export.

:class:`TraceRecorder` collects finished :class:`~repro.trace.spans.
Span` objects into a bounded ring buffer (old spans are dropped, and
counted, once ``capacity`` is exceeded — a long-running server can
leave a recorder attached without unbounded growth).  :meth:`TraceRecorder.
trace` snapshots the buffer into an immutable :class:`Trace`, whose
:meth:`Trace.to_jsonl` renders the schema documented in
``docs/tracing.md``.

Doctest::

    >>> from repro.trace import TraceRecorder, recording, span
    >>> rec = TraceRecorder(capacity=2)
    >>> with recording(rec):
    ...     for name in ("a", "b", "c"):
    ...         with span(name):
    ...             pass
    >>> [s.name for s in rec.trace().spans]   # ring buffer kept the tail
    ['b', 'c']
    >>> rec.dropped
    1
    >>> line = rec.trace().to_jsonl().splitlines()[0]
    >>> import json; sorted(json.loads(line))
    ['depth', 'dur_us', 'id', 'name', 'parent', 'start_us', 'status']
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass

from .spans import Span


class TraceRecorder:
    """A bounded sink for finished spans (install via
    :func:`repro.trace.install` or :func:`repro.trace.recording`).

    Thread-safe: spans finish on whichever thread opened them (the
    engine's parallel batch workers included), so :meth:`record`, the
    :meth:`trace` snapshot, and :meth:`clear` all run under one lock —
    the ``dropped`` counter stays exact and a snapshot taken while
    workers are still recording is a consistent prefix, never a
    half-updated buffer.
    """

    def __init__(self, capacity: int = 65536):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._spans: deque[Span] = deque(maxlen=capacity)
        self.dropped = 0
        self._lock = threading.Lock()

    def record(self, span: Span) -> None:
        """Append one finished span (evicting the oldest when full)."""
        with self._lock:
            if len(self._spans) == self.capacity:
                self.dropped += 1
            self._spans.append(span)

    def trace(self) -> "Trace":
        """An immutable snapshot of the buffered spans."""
        with self._lock:
            return Trace(tuple(self._spans), dropped=self.dropped)

    def clear(self) -> None:
        """Drop all buffered spans and reset the dropped counter."""
        with self._lock:
            self._spans.clear()
            self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def __repr__(self) -> str:
        return (f"TraceRecorder({len(self._spans)}/{self.capacity} spans, "
                f"{self.dropped} dropped)")


@dataclass(frozen=True)
class Trace:
    """An immutable collection of spans with serialization helpers."""

    spans: tuple[Span, ...]
    dropped: int = 0

    @property
    def epoch(self) -> float:
        """The earliest span start (the zero of exported timestamps)."""
        return min((s.start for s in self.spans), default=0.0)

    def ordered(self) -> list[Span]:
        """Spans sorted by start time (the buffer holds finish order —
        children complete before their parents)."""
        return sorted(self.spans, key=lambda s: (s.start, s.span_id))

    def roots(self) -> list[Span]:
        """Spans whose parent is absent from this trace."""
        ids = {s.span_id for s in self.spans}
        return [s for s in self.ordered()
                if s.parent_id is None or s.parent_id not in ids]

    def children(self, span: Span) -> list[Span]:
        """Direct children of ``span`` within this trace, by start time."""
        return [s for s in self.ordered() if s.parent_id == span.span_id]

    def find(self, name: str) -> list[Span]:
        """All spans with the given name, by start time."""
        return [s for s in self.ordered() if s.name == name]

    def counter_total(self, name: str) -> int:
        """Sum of one counter across all spans."""
        return sum(s.counters.get(name, 0) for s in self.spans)

    def to_jsonl(self) -> str:
        """One JSON object per line, in start order, times relative to
        :attr:`epoch` in microseconds (schema: ``docs/tracing.md``)."""
        epoch = self.epoch
        return "\n".join(
            json.dumps(s.to_record(epoch), sort_keys=True)
            for s in self.ordered())

    def write_jsonl(self, path) -> None:
        """Write :meth:`to_jsonl` (plus a trailing newline) to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_jsonl())
            fh.write("\n")

    def format_tree(self) -> str:
        """An indented human-readable rendering (CLI ``trace`` output)."""
        lines = []

        def walk(span: Span, indent: int) -> None:
            dur = ("?" if span.duration is None
                   else f"{span.duration * 1e3:.3f} ms")
            extras = ""
            if span.counters:
                extras = " " + " ".join(
                    f"{k}={v}" for k, v in sorted(span.counters.items()))
            status = "" if span.status == "ok" else f" [{span.status}]"
            lines.append(f"{'  ' * indent}{span.name}  {dur}{status}{extras}")
            for child in self.children(span):
                walk(child, indent + 1)

        for root in self.roots():
            walk(root, 0)
        if self.dropped:
            lines.append(f"({self.dropped} older spans dropped)")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.spans)
