"""Unified resource budgets for every interpreter in the library.

Queries over recursive databases express *partial* functions — QLhs
while-loops, GMhs runs, and counter machines can diverge — so every
execution is governed by a :class:`Budget`: a step allowance, an
optional oracle-question allowance, an optional wall-clock deadline,
and a cooperative cancellation flag.  A budget replaces the scattered
``fuel`` integers of earlier revisions (those keyword parameters
survive as deprecated aliases that construct a budget).

Exhausting any dimension raises :class:`~repro.errors.OutOfFuel`
carrying a machine-readable ``reason`` (:data:`OUT_OF_FUEL`,
:data:`DEADLINE`, or :data:`CANCELLED`); the engine boundary converts
that into a ``Verdict.UNKNOWN`` rather than leaking the exception
(see :mod:`repro.engine.verdict`).

Doctest::

    >>> from repro.trace import Budget
    >>> b = Budget(max_steps=3)
    >>> b.charge(); b.charge(2); b.steps
    3
    >>> b.charge()
    Traceback (most recent call last):
        ...
    repro.errors.OutOfFuel: step budget of 3 exhausted
    >>> child = b.fork()          # fresh counters, shared cancellation
    >>> child.steps, child.max_steps
    (0, 3)
    >>> b.cancel(); child.cancelled
    True
"""

from __future__ import annotations

import threading
import time

from ..errors import OutOfFuel

#: Reasons carried by :class:`~repro.errors.OutOfFuel` (and surfaced on
#: ``Verdict.UNKNOWN``) — the machine-readable divergence contract.
OUT_OF_FUEL = "out_of_fuel"
DEADLINE = "deadline"
CANCELLED = "cancelled"

REASONS = (OUT_OF_FUEL, DEADLINE, CANCELLED)


class Budget:
    """A cooperative resource budget threaded through an evaluation.

    Parameters
    ----------
    max_steps:
        Maximum interpreter steps (``None`` = unbounded).  What one
        step means per interpreter is tabulated in ``docs/limits.md``.
    max_oracle_calls:
        Maximum ``≅_B`` / relation-membership oracle questions
        (``None`` = unbounded).
    deadline:
        Wall-clock allowance in seconds, measured on the monotonic
        clock from construction (``None`` = no deadline).  Forked
        children inherit the *absolute* deadline, so a whole evaluation
        tree shares one clock.

    Thread safety: one budget may be charged from many threads (the
    engine's parallel batch path shares one fork across its pool
    workers).  :meth:`charge` / :meth:`charge_oracle` run under a
    private lock and commit **check-then-charge**: a charge that would
    exceed the limit raises *without* consuming, so ``steps`` never
    exceeds ``max_steps`` and hammering one budget from N threads
    yields exact accounting — the sum of successful charges equals the
    final counter bit for bit.  The raised :class:`OutOfFuel` carries
    the attempted count (``steps + cost``), preserving the historical
    ``exc.steps > max_steps`` signal.  Forks get fresh counters and a
    fresh lock; only the cancellation flag (and the absolute deadline)
    is shared.
    """

    __slots__ = ("max_steps", "max_oracle_calls", "deadline_at",
                 "steps", "oracle_calls", "_cancel_event", "_lock")

    def __init__(self, max_steps: int | None = None, *,
                 max_oracle_calls: int | None = None,
                 deadline: float | None = None,
                 _deadline_at: float | None = None,
                 _cancel_event: threading.Event | None = None):
        self.max_steps = max_steps
        self.max_oracle_calls = max_oracle_calls
        if _deadline_at is not None:
            self.deadline_at: float | None = _deadline_at
        elif deadline is not None:
            self.deadline_at = time.monotonic() + deadline
        else:
            self.deadline_at = None
        self.steps = 0
        self.oracle_calls = 0
        self._cancel_event = _cancel_event or threading.Event()
        self._lock = threading.Lock()

    # -- charging ------------------------------------------------------------

    def charge(self, cost: int = 1) -> None:
        """Account ``cost`` steps; raise :class:`OutOfFuel` on any trip.

        Atomic and non-committing on failure: the increment and the
        limit test happen under the budget's lock, and a charge that
        would cross ``max_steps`` raises **without** consuming — so the
        counter is exact even when many threads charge one budget, and
        :class:`OutOfFuel` fires precisely at the documented limit.
        The cancellation flag and (when set) the deadline are checked
        on every charge, so cooperative interruption is prompt.
        """
        with self._lock:
            attempted = self.steps + cost
            if self.max_steps is not None and attempted > self.max_steps:
                raise OutOfFuel(
                    f"step budget of {self.max_steps} exhausted",
                    steps=attempted, reason=OUT_OF_FUEL)
            self.steps = attempted
        self.check()

    def charge_oracle(self, n: int = 1) -> None:
        """Account ``n`` oracle questions (atomic, like :meth:`charge`)."""
        with self._lock:
            attempted = self.oracle_calls + n
            if (self.max_oracle_calls is not None
                    and attempted > self.max_oracle_calls):
                raise OutOfFuel(
                    f"oracle budget of {self.max_oracle_calls} exhausted",
                    steps=self.steps, reason=OUT_OF_FUEL)
            self.oracle_calls = attempted

    def check(self) -> None:
        """Raise if cancelled or past the deadline (no step charged)."""
        if self._cancel_event.is_set():
            raise OutOfFuel("evaluation cancelled",
                            steps=self.steps, reason=CANCELLED)
        if (self.deadline_at is not None
                and time.monotonic() > self.deadline_at):
            raise OutOfFuel("wall-clock deadline expired",
                            steps=self.steps, reason=DEADLINE)

    # -- cancellation --------------------------------------------------------

    def cancel(self) -> None:
        """Cooperatively cancel: every sharer (forks included) trips on
        its next ``charge``/``check`` with reason :data:`CANCELLED`."""
        self._cancel_event.set()

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called on this budget tree."""
        return self._cancel_event.is_set()

    # -- derivation ----------------------------------------------------------

    def fork(self, max_steps: int | None = None, *,
             deadline: float | None = None) -> "Budget":
        """A child budget: fresh counters, same limits.

        The absolute deadline and the cancellation flag are *shared*
        (cancelling the parent cancels every fork), while step and
        oracle counters restart — so each member of a batch gets the
        full per-evaluation allowance.  ``max_steps`` overrides the
        step limit (used for plan-level knobs like
        :class:`~repro.engine.plan.MachineFixpoint.max_steps`).

        ``deadline`` gives the child a *relative* wall-clock allowance
        measured from now (the serving tier's per-request clock: a
        tenant template has no deadline, each admitted request forks
        with one).  It can only tighten: when the parent already has an
        absolute deadline, the child gets the earlier of the two —
        forking never grants fresh wall-clock time.

        Edge case: forking a budget whose deadline is near (or past)
        expiry yields a child that is *already expired* — the child
        inherits the parent's absolute ``deadline_at``, its
        :attr:`remaining_seconds` is clamped at ``0.0`` rather than
        going negative, and its first :meth:`check` trips with reason
        :data:`DEADLINE`.
        """
        deadline_at = self.deadline_at
        if deadline is not None:
            requested = time.monotonic() + deadline
            deadline_at = (requested if deadline_at is None
                           else min(deadline_at, requested))
        return Budget(
            max_steps if max_steps is not None else self.max_steps,
            max_oracle_calls=self.max_oracle_calls,
            _deadline_at=deadline_at,
            _cancel_event=self._cancel_event)

    # -- process-boundary shipping -------------------------------------------

    def ship(self) -> dict:
        """The JSON-safe form of this budget's *limits* for a worker
        process (:mod:`repro.engine.shard`).

        Neither the cancellation event nor the absolute monotonic
        deadline can cross a process boundary (each process has its own
        monotonic clock), so a shipped budget carries the limits plus
        the wall-clock *remainder*: the worker reconstructs a budget
        whose deadline is measured on its own clock but can never
        outlive the parent's.  A parent with no deadline ships
        ``remaining_s: None`` (the worker inherits no deadline); an
        already-expired parent ships ``0.0`` (the worker budget is born
        expired).

        Doctest::

            >>> Budget(max_steps=5).ship()
            {'max_steps': 5, 'max_oracle_calls': None, 'remaining_s': None}
        """
        return {"max_steps": self.max_steps,
                "max_oracle_calls": self.max_oracle_calls,
                "remaining_s": self.remaining_seconds}

    @staticmethod
    def from_shipped(data: dict) -> "Budget":
        """Rebuild a worker-side budget from :meth:`ship` output.

        The child is a cross-process analogue of :meth:`fork`: fresh
        counters, the parent's step/oracle limits, and a deadline capped
        *relative* to the parent's remaining wall-clock time (never
        extended).  Cancellation does not propagate — a cancelled
        coordinator abandons the worker's result at the join instead.

        Doctest::

            >>> child = Budget.from_shipped(Budget(max_steps=5).ship())
            >>> child.steps, child.max_steps, child.deadline_at
            (0, 5, None)
        """
        return Budget(data["max_steps"],
                      max_oracle_calls=data["max_oracle_calls"],
                      deadline=data["remaining_s"])

    def absorb(self, steps: int = 0, oracle_calls: int = 0) -> None:
        """Account work a child budget performed in *another process*.

        The merge half of the :meth:`ship` contract: the worker reports
        how many steps/oracle questions its rebuilt budget consumed, and
        the coordinator adds them here so per-shard accounting is exact
        — after absorbing every worker report, ``steps`` equals the sum
        of all worker-side counters bit for bit.  Unlike :meth:`charge`
        this never raises: the work has already happened; an absorb that
        lands past ``max_steps`` records the overshoot rather than
        losing it (the worker's own budget enforced the limit).

        Doctest::

            >>> parent = Budget(max_steps=10)
            >>> parent.absorb(steps=4); parent.absorb(steps=3)
            >>> parent.steps
            7
        """
        if steps < 0 or oracle_calls < 0:
            raise ValueError("absorbed counts must be non-negative")
        with self._lock:
            self.steps += steps
            self.oracle_calls += oracle_calls

    # -- introspection -------------------------------------------------------

    @property
    def remaining_steps(self) -> int | None:
        """Steps left before the next charge trips (``None`` if unbounded)."""
        if self.max_steps is None:
            return None
        return max(self.max_steps - self.steps, 0)

    @property
    def remaining_seconds(self) -> float | None:
        """Wall-clock time left before the deadline trips.

        ``None`` when no deadline is set; clamped at ``0.0`` once the
        deadline has passed (an expired budget — a fork of a
        near-expired parent, say — never reports a negative remainder).
        """
        if self.deadline_at is None:
            return None
        return max(self.deadline_at - time.monotonic(), 0.0)

    @property
    def expired(self) -> bool:
        """Whether the deadline has already passed (steps not counted)."""
        return (self.deadline_at is not None
                and time.monotonic() > self.deadline_at)

    def __repr__(self) -> str:
        parts = [f"steps={self.steps}"]
        if self.max_steps is not None:
            parts.append(f"max_steps={self.max_steps}")
        if self.max_oracle_calls is not None:
            parts.append(f"max_oracle_calls={self.max_oracle_calls}")
        if self.deadline_at is not None:
            parts.append(f"deadline_in={self.remaining_seconds:.3f}s")
        if self.cancelled:
            parts.append("cancelled")
        return f"Budget({', '.join(parts)})"


def as_budget(budget: "Budget | int | None" = None,
              fuel: int | None = None, *,
              default_steps: int | None = None) -> Budget:
    """Coerce the ``(budget, fuel)`` parameter pair into a :class:`Budget`.

    This is the deprecated-alias shim every governed entry point uses:
    ``fuel=N`` (the historical integer knob) constructs
    ``Budget(max_steps=N)``; an integer ``budget`` does the same; a
    :class:`Budget` passes through; and with neither, the entry point's
    registered default from :mod:`repro.trace.limits` applies.

    Doctest::

        >>> from repro.trace.budget import as_budget
        >>> as_budget(fuel=7).max_steps           # deprecated alias
        7
        >>> as_budget(default_steps=99).max_steps
        99
        >>> b = Budget(max_steps=5)
        >>> as_budget(b) is b
        True
    """
    if budget is not None and fuel is not None:
        raise ValueError("pass either budget= or the deprecated fuel=, "
                         "not both")
    if budget is not None:
        if isinstance(budget, Budget):
            return budget
        return Budget(max_steps=int(budget))
    if fuel is not None:
        return Budget(max_steps=int(fuel))
    return Budget(max_steps=default_steps)
