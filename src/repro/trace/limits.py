"""The single registry of every resource-limit default in the library.

Queries over recursive databases are inherently partial (Section 4 of
the paper forces step bounds everywhere), so every interpreter takes a
:class:`~repro.trace.budget.Budget`.  The *defaults* those budgets fall
back to used to be six uncoordinated integers scattered across the
code; this module is now the one place they live, and
``docs/limits.md`` renders the same registry as prose.  A unit test
(``tests/test_docs/test_limits_doc.py``) cross-checks all three views:
the constants here, the live behaviour of each entry point, and the
markdown table.

Doctest::

    >>> from repro.trace import limits
    >>> limits.COUNTER_RUN
    100000
    >>> limits.ENGINE >= limits.QLHS_INTERPRETER
    True
"""

from __future__ import annotations

from dataclasses import dataclass

# -- the default step budgets, one constant per governed entry point --------

COUNTER_RUN = 100_000
ORACLE_RUN = 100_000
GM_RUN = 100_000
GMHS_RUN_ON_CB = 200_000
GMHS_PIPELINE = 500_000
MACHINE_FIXPOINT = 500_000
QLHS_INTERPRETER = 1_000_000
QL_INTERPRETER = 1_000_000
QLF_INTERPRETER = 1_000_000
PQ_PIPELINE = 10_000_000
ENGINE = 10_000_000
OPTIMIZER_PASSES = 12
CHECK_CASE = 200_000
SERVE_REQUEST = 2_000_000
INGEST_DB = 5_000_000
SHARD_TASK = 10_000_000


@dataclass(frozen=True)
class LimitSpec:
    """One row of the authoritative limits table.

    ``location`` is the dotted path of the governed entry point,
    ``parameter`` the budget-accepting parameter, ``default`` the step
    budget used when the caller passes nothing, ``step_meaning`` what
    one unit of the budget counts there, and ``failure`` how exhaustion
    surfaces to the caller.
    """

    location: str
    parameter: str
    default: int
    step_meaning: str
    failure: str


#: Every budget knob in ``src/repro/``, in docs/limits.md order.
REGISTRY: tuple[LimitSpec, ...] = (
    LimitSpec(
        "repro.machines.counter.CounterMachine.run",
        "budget", COUNTER_RUN,
        "one executed counter instruction",
        "raises OutOfFuel(reason)"),
    LimitSpec(
        "repro.machines.oracle.OracleProgram.run",
        "budget", ORACLE_RUN,
        "one executed register instruction (ASK included)",
        "raises OutOfFuel(reason)"),
    LimitSpec(
        "repro.machines.generic.GenericMachine.run",
        "budget", GM_RUN,
        "one synchronous step of all live units",
        "raises OutOfFuel(reason)"),
    LimitSpec(
        "repro.machines.gmhs.GMhsMachine.run_on_cb",
        "budget", GMHS_RUN_ON_CB,
        "one synchronous step of all live units",
        "raises OutOfFuel(reason)"),
    LimitSpec(
        "repro.machines.gmhs_pipeline.run_query_gmhs",
        "budget", GMHS_PIPELINE,
        "one synchronous GMhs step of the loading stage",
        "raises OutOfFuel(reason)"),
    LimitSpec(
        "repro.engine.plan.MachineFixpoint",
        "max_steps", MACHINE_FIXPOINT,
        "one synchronous GMhs step of the loading stage",
        "Engine.eval returns Verdict.UNKNOWN"),
    LimitSpec(
        "repro.qlhs.interpreter.QLhsInterpreter",
        "budget", QLHS_INTERPRETER,
        "one statement or term operation (bulk ops cost their output size)",
        "raises OutOfFuel(reason)"),
    LimitSpec(
        "repro.finite.ql.QLInterpreter",
        "budget", QL_INTERPRETER,
        "one statement or term operation (`up` costs |value|*|domain|)",
        "raises OutOfFuel(reason)"),
    LimitSpec(
        "repro.fcf.qlf.QLfInterpreter",
        "budget", QLF_INTERPRETER,
        "one statement or term operation",
        "raises OutOfFuel(reason)"),
    LimitSpec(
        "repro.qlhs.completeness.PQPipeline",
        "budget", PQ_PIPELINE,
        "one QLhs operation of the find-d stage",
        "raises OutOfFuel(reason)"),
    LimitSpec(
        "repro.engine.executor.Engine",
        "budget", ENGINE,
        "one interpreter operation of any fixpoint node",
        "Engine.eval returns Verdict.UNKNOWN"),
    LimitSpec(
        "repro.engine.optimize.optimize",
        "max_passes", OPTIMIZER_PASSES,
        "one whole-tree rewrite pass of the plan optimizer",
        "the plan is used as rewritten so far (still semantics-preserving)"),
    LimitSpec(
        "repro.check.oracles.CaseContext",
        "budget_steps", CHECK_CASE,
        "one interpreter operation on any one frontend route of a fuzz case",
        "the route abstains (UNKNOWN); oracles compare modulo UNKNOWN"),
    LimitSpec(
        "repro.serve.tenants.Tenant",
        "max_steps", SERVE_REQUEST,
        "one interpreter operation of one HTTP request (per batch member)",
        "the response verdict is UNKNOWN; admission overruns get HTTP 429"),
    LimitSpec(
        "repro.store.ingest.ingest_manifest",
        "budget_steps", INGEST_DB,
        "one interpreter operation of one warm-up query of one database",
        "the query persists as UNKNOWN(out_of_fuel) in its budget class"),
    LimitSpec(
        "repro.engine.shard.ShardExecutor",
        "budget_steps", SHARD_TASK,
        "one interpreter operation of one shipped batch member in a "
        "worker process",
        "the member's verdict is UNKNOWN(reason); the ordered merge "
        "still completes"),
)
