"""Finite graph builders and hs-r-db conveniences.

Small finite graphs (as finite databases with symmetric edge relations)
feed the component-union construction, the BP gadget, and the tests; the
hs-builders package them straight into Definition 3.7 representations.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core.database import RecursiveDatabase, finite_database
from ..symmetric.constructions import INFINITE, component_union
from ..symmetric.hsdb import HSDatabase


def _symmetrize(edges: Sequence[tuple]) -> list[tuple]:
    out = []
    for (a, b) in edges:
        out.append((a, b))
        out.append((b, a))
    return list(dict.fromkeys(out))


def path_db(n: int, name: str | None = None) -> RecursiveDatabase:
    """The path P_n: 0—1—…—(n−1)."""
    if n < 1:
        raise ValueError("a path needs at least one node")
    edges = _symmetrize([(i, i + 1) for i in range(n - 1)])
    return finite_database([(2, edges)], range(n), name=name or f"P{n}")


def cycle_db(n: int, name: str | None = None) -> RecursiveDatabase:
    """The cycle C_n (n >= 3)."""
    if n < 3:
        raise ValueError("a cycle needs at least three nodes")
    edges = _symmetrize([(i, (i + 1) % n) for i in range(n)])
    return finite_database([(2, edges)], range(n), name=name or f"C{n}")


def complete_db(n: int, name: str | None = None) -> RecursiveDatabase:
    """The complete graph K_n."""
    if n < 1:
        raise ValueError("K_n needs at least one node")
    edges = [(i, j) for i in range(n) for j in range(n) if i != j]
    return finite_database([(2, edges)], range(n), name=name or f"K{n}")


def star_db(n: int, name: str | None = None) -> RecursiveDatabase:
    """The star S_n: center 0 joined to leaves 1..n."""
    if n < 1:
        raise ValueError("a star needs at least one leaf")
    edges = _symmetrize([(0, i) for i in range(1, n + 1)])
    return finite_database([(2, edges)], range(n + 1), name=name or f"S{n}")


def edge_db(name: str = "K2") -> RecursiveDatabase:
    """A single undirected edge."""
    return complete_db(2, name=name)


def arrow_db(name: str = "arrow") -> RecursiveDatabase:
    """A single directed edge 0 → 1 (asymmetric; useful for orientation
    tests of ``~`` and automorphism machinery)."""
    return finite_database([(2, [(0, 1)])], [0, 1], name=name)


def triangles_hsdb(name: str = "triangles") -> HSDatabase:
    """Infinitely many disjoint triangles — a highly symmetric graph."""
    return component_union([(complete_db(3), INFINITE)], name=name)


def cycles_hsdb(length: int, name: str | None = None) -> HSDatabase:
    """Infinitely many disjoint ``length``-cycles."""
    return component_union([(cycle_db(length), INFINITE)],
                           name=name or f"inf-C{length}")


def mixed_components_hsdb(name: str = "K3+K2") -> HSDatabase:
    """Infinitely many triangles and infinitely many single edges — the
    test suite's canonical two-kind highly symmetric graph."""
    return component_union(
        [(complete_db(3), INFINITE), (edge_db(), INFINITE)], name=name)


__all__ = [
    "arrow_db",
    "complete_db",
    "cycle_db",
    "cycles_hsdb",
    "edge_db",
    "mixed_components_hsdb",
    "path_db",
    "star_db",
    "triangles_hsdb",
]
