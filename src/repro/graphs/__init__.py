"""Recursive graphs and finite graph builders (worked examples of §3)."""

from .builders import (
    arrow_db,
    complete_db,
    cycle_db,
    cycles_hsdb,
    edge_db,
    mixed_components_hsdb,
    path_db,
    star_db,
    triangles_hsdb,
)
from .recursive import (
    clique,
    divisibility,
    empty_graph,
    grid,
    infinite_line,
    mod_cliques,
    rado,
    rado_edge,
    two_way_line,
)

__all__ = [
    "arrow_db",
    "clique",
    "complete_db",
    "cycle_db",
    "cycles_hsdb",
    "divisibility",
    "edge_db",
    "empty_graph",
    "grid",
    "infinite_line",
    "mixed_components_hsdb",
    "mod_cliques",
    "path_db",
    "rado",
    "rado_edge",
    "star_db",
    "triangles_hsdb",
    "two_way_line",
]
