"""A library of recursive graphs (binary r-dbs over countable domains).

The paper's running examples live here: the two-way infinite line (not
highly symmetric — §3.1's marking argument), the grid (not highly
symmetric — infinite induced path), the full infinite clique (highly
symmetric), unions of finite components (highly symmetric iff finitely
many kinds), and the Rado graph (a recursive random structure).
"""

from __future__ import annotations

from collections.abc import Iterator

from ..core.database import RecursiveDatabase, database_from_predicates
from ..core.domain import Domain, integers_domain, naturals_domain
from ..core.relation import RecursiveRelation
from ..symmetric.random_structure import rado_database, rado_edge


def infinite_line(name: str = "line") -> RecursiveDatabase:
    """The one-way infinite line 0—1—2—… (symmetric edges on ℕ)."""
    return database_from_predicates(
        [(2, lambda x, y: abs(x - y) == 1)], name=name)


def two_way_line(name: str = "zline") -> RecursiveDatabase:
    """The paper's §3.1 figure: the two-way infinite line, on ℤ.

    All nodes are automorphic (one rank-1 class), but pairs at distinct
    distances are not — so the graph is *not* highly symmetric.
    """
    return RecursiveDatabase(
        integers_domain(),
        [RecursiveRelation(2, lambda u: abs(u[0] - u[1]) == 1, name="E")],
        name=name)


def _pairs_domain() -> Domain:
    from ..util.orderings import cantor_unpair
    from itertools import count

    def enum() -> Iterator[tuple[int, int]]:
        for z in count(0):
            yield cantor_unpair(z)

    return Domain(
        contains=lambda x: (isinstance(x, tuple) and len(x) == 2
                            and all(isinstance(c, int) and not isinstance(c, bool)
                                    and c >= 0 for c in x)),
        enumerate_fn=enum,
        name="NxN",
    )


def grid(name: str = "grid") -> RecursiveDatabase:
    """The quarter-plane grid ℕ² with 4-neighbour edges.

    Not highly symmetric: it contains an infinite induced path (the
    paper's §3.1 argument).
    """
    def edge(u: tuple, v: tuple) -> bool:
        return abs(u[0] - v[0]) + abs(u[1] - v[1]) == 1

    return RecursiveDatabase(
        _pairs_domain(),
        [RecursiveRelation(2, lambda t: edge(t[0], t[1]), name="E")],
        name=name)


def clique(name: str = "clique") -> RecursiveDatabase:
    """The full infinite clique on ℕ (highly symmetric)."""
    return database_from_predicates([(2, lambda x, y: x != y)], name=name)


def empty_graph(name: str = "empty") -> RecursiveDatabase:
    """The edgeless graph on ℕ (highly symmetric, trivially)."""
    return database_from_predicates([(2, lambda x, y: False)], name=name)


def mod_cliques(k: int, name: str | None = None) -> RecursiveDatabase:
    """``k`` disjoint infinite cliques: x ~ y iff x ≠ y and x ≡ y (mod k).

    Highly symmetric: the automorphisms permute residue classes of equal
    (infinite) size and act arbitrarily within.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    return database_from_predicates(
        [(2, lambda x, y: x != y and x % k == y % k)],
        name=name or f"{k}-cliques")


def divisibility(name: str = "divides") -> RecursiveDatabase:
    """x ~ y iff x divides y (on ℕ₊ shifted into ℕ) — a directed
    recursive graph that is not highly symmetric."""
    return database_from_predicates(
        [(2, lambda x, y: (x + 1) != (y + 1) and (y + 1) % (x + 1) == 0)],
        name=name)


def rado(name: str = "rado") -> RecursiveDatabase:
    """The Rado graph (BIT predicate) — see
    :mod:`repro.symmetric.random_structure`."""
    return rado_database(name=name)


__all__ = [
    "clique",
    "divisibility",
    "empty_graph",
    "grid",
    "infinite_line",
    "mod_cliques",
    "rado",
    "rado_edge",
    "two_way_line",
]
