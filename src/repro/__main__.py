"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``info``
    Library overview: version, subpackages, the paper reference.
``classes TYPE RANK``
    Count the ≅ₗ equivalence classes for a database type (comma-
    separated arities) and rank, e.g. ``python -m repro classes 2,1 2``
    prints the paper's 68.
``tree NAME [DEPTH]``
    Print the characteristic tree of a built-in hs-r-db (``clique``,
    ``rado``, ``triangles``, ``k3k2``) to the given depth.
``eval NAME FORMULA``
    Evaluate a first-order sentence over a built-in hs-r-db, e.g.
    ``python -m repro eval rado "forall x. exists y. R1(x, y)"``.
``engine NAME FORMULA [--repeat=N] [--stats]``
    Evaluate through the unified engine (``repro.engine``): the sentence
    is lowered to a plan, cached by database fingerprint, and re-run
    ``N`` times (warm runs are cache probes).  ``--stats`` prints the
    :class:`~repro.engine.stats.EngineStats` snapshot — cache
    hits/misses, oracle question count, per-node timings, wall time,
    verdict counts.
``check [--seed=N] [--cases=K] [--budget-s=S] [--out=F] [--emit-dir=D]
[--workers=W]``
    Differential & metamorphic fuzzing of the four query frontends
    (``repro.check``): random databases and queries, every applicable
    frontend must agree modulo ``UNKNOWN``; failures are shrunk and
    emitted as standalone reproducer scripts.  ``--workers=W`` (W > 1)
    fans the cases across a process pool (``docs/sharding.md``) with
    the same report content; shrinking and reproducer writing stay in
    the parent.  Exit status 1 on any genuine disagreement.
``check --stress [--seed=N] [--threads=T] [--ops=K] [--budget-s=S] [--out=F]
[--hammers=A,B]``
    The race-stress campaign instead (``repro.check.stress``): seeded
    multi-threaded hammers pounding shared budgets, caches, recorders,
    engines, and a process-pool shard executor, asserting the
    thread-safety contract of ``docs/concurrency.md`` (exact
    accounting, zero escaped exceptions, sequential-reference
    agreement).  ``--budget-s`` loops fresh-seeded rounds for a
    wall-clock budget; ``--hammers=A,B`` restricts a round to named
    hammers; exit status 1 when any invariant broke.
``serve [--config=FILE] [--host=H] [--port=P] [--store=DB] [--print-config]``
    Run the HTTP/JSON serving tier (``repro.serve``): the unified
    engine behind ``POST /eval`` / ``POST /eval_batch`` (streamed
    NDJSON verdicts), with a catalog of named databases, per-tenant
    quotas (HTTP 429 on exhaustion), and ``GET /stats`` / ``GET
    /trace`` observability.  ``--config`` loads a TOML or JSON config
    (see ``docs/serving.md``); without it the batteries-included
    default catalog is served.  ``--store=DB`` attaches a durable
    sqlite store (``repro.store``): persisted results load at startup
    so restarts serve warm, and new verdicts write through (see
    ``docs/persistence.md``).  With ``[server] workers > 1`` batch
    misses fan out across a process-pool shard executor
    (``docs/sharding.md``).  ``--print-config`` dumps the effective
    config as JSON and exits.
``ingest MANIFEST --store=DB [--workers=N] [--budget-steps=B] [--no-optimize]``
    Bulk-build a catalog into a durable store (``repro.store.ingest``):
    every database in the JSON manifest is constructed, fingerprinted,
    warmed with its queries, and persisted; ``--workers=N`` fans the
    per-database work out over worker processes with stats and spans
    merged at the join.  Prints a JSON ingestion report.
``trace NAME FORMULA [--jsonl=FILE]``
    Evaluate through the engine under a
    :class:`~repro.trace.TraceRecorder` and print the span tree
    (name, duration, counters, status).  ``--jsonl=FILE`` also writes
    the trace in the JSONL schema documented in ``docs/tracing.md``.

``python -m repro --version`` prints the library version and exits.

Any command also accepts a global ``--trace=FILE`` flag: the whole run
is recorded and the spans are written to ``FILE`` as JSONL on exit,
e.g. ``python -m repro engine rado "exists x. R1(x, x)" --trace=t.jsonl``.
"""

from __future__ import annotations

import sys

from . import __version__


def _builtin_hsdb(name: str):
    from .graphs import mixed_components_hsdb, triangles_hsdb
    from .symmetric import infinite_clique, rado_hsdb

    builders = {
        "clique": infinite_clique,
        "rado": rado_hsdb,
        "triangles": triangles_hsdb,
        "k3k2": mixed_components_hsdb,
    }
    if name not in builders:
        raise SystemExit(
            f"unknown database {name!r}; choose from {sorted(builders)}")
    return builders[name]()


def cmd_info(args: list[str]) -> int:
    """``info`` — library overview and paper reference."""
    print(f"recdb {__version__} — computable queries over recursive "
          "(infinite) relational databases")
    print("Reproduction of: Hirst & Harel, 'Completeness Results for "
          "Recursive Data Bases', PODS 1993 / JCSS 52 (1996).")
    print("\nSubpackages: core, logic, symmetric, qlhs, finite, fcf, "
          "machines, bp, graphs, engine, serve")
    print("Docs: README.md, DESIGN.md, EXPERIMENTS.md; runnable demos "
          "in examples/")
    return 0


def cmd_classes(args: list[str]) -> int:
    """``classes TYPE RANK`` — count ≅ₗ equivalence classes."""
    from .core import count_local_types

    if len(args) != 2:
        raise SystemExit("usage: python -m repro classes TYPE RANK "
                         "(e.g. classes 2,1 2)")
    signature = tuple(int(a) for a in args[0].split(","))
    rank = int(args[1])
    total = count_local_types(signature, rank)
    print(f"type {signature}, rank {rank}: {total} classes of local "
          "isomorphism")
    return 0


def cmd_tree(args: list[str]) -> int:
    """``tree NAME [DEPTH]`` — print a characteristic tree."""
    if not args:
        raise SystemExit("usage: python -m repro tree NAME [DEPTH]")
    hsdb = _builtin_hsdb(args[0])
    depth = int(args[1]) if len(args) > 1 else 2
    print(f"{hsdb.name}: characteristic tree to depth {depth}")
    for n in range(depth + 1):
        level = hsdb.tree.level(n)
        print(f"  T^{n} ({len(level)} classes)")
        for p in level:
            print("   ", "  " * n, p)
    return 0


def cmd_eval(args: list[str]) -> int:
    """``eval NAME FORMULA`` — FO sentence over a built-in hs-r-db."""
    from .logic import holds_sentence, parse

    if len(args) != 2:
        raise SystemExit('usage: python -m repro eval NAME "SENTENCE"')
    hsdb = _builtin_hsdb(args[0])
    sentence = parse(args[1])
    answer = holds_sentence(hsdb, sentence)
    print(f"{hsdb.name} |= {args[1]}  ->  {answer}")
    return 0


def cmd_engine(args: list[str]) -> int:
    """``engine NAME FORMULA [--repeat=N] [--stats] [--no-optimize]
    [--no-compile]`` — engine route (optimizer + compiled backend on
    by default; the flags select the naive interpreted path)."""
    from .engine import Engine, plan_from_sentence
    from .logic import parse

    flags = [a for a in args if a.startswith("--")]
    positional = [a for a in args if not a.startswith("--")]
    repeat = 1
    show_stats = False
    optimize = True
    compiled = True
    for flag in flags:
        if flag == "--stats":
            show_stats = True
        elif flag == "--no-optimize":
            optimize = False
        elif flag == "--no-compile":
            compiled = False
        elif flag.startswith("--repeat="):
            repeat = int(flag.split("=", 1)[1])
        else:
            raise SystemExit(f"unknown flag {flag!r}")
    if "--repeat" in positional:
        # Allow the space-separated form ``--repeat N`` too.
        raise SystemExit("write --repeat=N (e.g. --repeat=100)")
    if len(positional) != 2:
        raise SystemExit(
            'usage: python -m repro engine NAME "SENTENCE" '
            "[--repeat=N] [--stats] [--no-optimize] [--no-compile]")
    if repeat < 1:
        raise SystemExit("--repeat must be >= 1")

    hsdb = _builtin_hsdb(positional[0])
    sentence = parse(positional[1])
    engine = Engine(hsdb, optimize=optimize, compiled=compiled)
    plan = plan_from_sentence(sentence, hsdb.signature)
    answer = engine.holds(plan)
    for __ in range(repeat - 1):
        answer = engine.holds(plan)
    print(f"{hsdb.name} |= {positional[1]}  ->  {answer}")
    print(f"fingerprint: {engine.fingerprint}")
    if show_stats:
        print(engine.stats().format())
    return 0


def cmd_trace(args: list[str]) -> int:
    """``trace NAME FORMULA [--jsonl=FILE]`` — traced engine run."""
    from .engine import Engine, plan_from_sentence
    from .logic import parse
    from .trace import TraceRecorder, recording

    flags = [a for a in args if a.startswith("--")]
    positional = [a for a in args if not a.startswith("--")]
    jsonl = None
    for flag in flags:
        if flag.startswith("--jsonl="):
            jsonl = flag.split("=", 1)[1]
        else:
            raise SystemExit(f"unknown flag {flag!r}")
    if len(positional) != 2:
        raise SystemExit(
            'usage: python -m repro trace NAME "SENTENCE" [--jsonl=FILE]')

    hsdb = _builtin_hsdb(positional[0])
    sentence = parse(positional[1])
    engine = Engine(hsdb)
    plan = plan_from_sentence(sentence, hsdb.signature)
    recorder = TraceRecorder()
    with recording(recorder):
        verdict = engine.eval(plan)
    print(f"{hsdb.name} |= {positional[1]}  ->  {verdict!r}")
    trace = recorder.trace()
    print(trace.format_tree())
    if jsonl:
        trace.write_jsonl(jsonl)
        print(f"wrote {len(trace)} spans to {jsonl}")
    return 0


def cmd_serve(args: list[str]) -> int:
    """``serve`` — run the HTTP/JSON serving tier until interrupted."""
    import json

    from .serve import default_config, load_config, serve_forever

    config_path = None
    host = None
    port = None
    store = None
    print_config = False
    for arg in args:
        if arg.startswith("--config="):
            config_path = arg.split("=", 1)[1]
        elif arg.startswith("--host="):
            host = arg.split("=", 1)[1]
        elif arg.startswith("--port="):
            port = int(arg.split("=", 1)[1])
        elif arg.startswith("--store="):
            store = arg.split("=", 1)[1]
        elif arg == "--print-config":
            print_config = True
        else:
            raise SystemExit(
                "usage: python -m repro serve [--config=FILE] [--host=H] "
                "[--port=P] [--store=DB] [--print-config]")
    config = (load_config(config_path) if config_path is not None
              else default_config())
    if print_config:
        print(json.dumps(config.to_dict(), indent=2, sort_keys=True))
        return 0
    return serve_forever(config, host=host, port=port, store=store)


def cmd_ingest(args: list[str]) -> int:
    """``ingest MANIFEST --store=DB`` — bulk-build databases into a
    durable store across worker processes."""
    import json

    from .store.ingest import ingest_manifest, load_manifest
    from .trace import limits

    manifest_path = None
    store = None
    workers = 1
    budget_steps = limits.INGEST_DB
    optimize = True
    for arg in args:
        if arg.startswith("--store="):
            store = arg.split("=", 1)[1]
        elif arg.startswith("--workers="):
            workers = int(arg.split("=", 1)[1])
        elif arg.startswith("--budget-steps="):
            budget_steps = int(arg.split("=", 1)[1])
        elif arg == "--no-optimize":
            optimize = False
        elif not arg.startswith("--") and manifest_path is None:
            manifest_path = arg
        else:
            raise SystemExit(
                "usage: python -m repro ingest MANIFEST --store=DB "
                "[--workers=N] [--budget-steps=B] [--no-optimize]")
    if manifest_path is None or store is None:
        raise SystemExit(
            "usage: python -m repro ingest MANIFEST --store=DB "
            "[--workers=N] [--budget-steps=B] [--no-optimize]")
    if workers < 1:
        raise SystemExit("--workers must be >= 1")
    manifest = load_manifest(manifest_path)
    report = ingest_manifest(manifest, store, workers=workers,
                             budget_steps=budget_steps,
                             optimize=optimize)
    print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    return 0


def cmd_check(args: list[str]) -> int:
    """``check`` — differential & metamorphic frontend fuzzing."""
    from .check.runner import main as check_main

    return check_main(args)


COMMANDS = {
    "info": cmd_info,
    "classes": cmd_classes,
    "tree": cmd_tree,
    "eval": cmd_eval,
    "engine": cmd_engine,
    "trace": cmd_trace,
    "check": cmd_check,
    "serve": cmd_serve,
    "ingest": cmd_ingest,
}


def main(argv: list[str] | None = None) -> int:
    """Dispatch to a subcommand (handling the global ``--trace=FILE``)."""
    argv = list(sys.argv[1:] if argv is None else argv)
    trace_file = None
    remaining = []
    for arg in argv:
        if arg.startswith("--trace="):
            trace_file = arg.split("=", 1)[1]
        else:
            remaining.append(arg)
    argv = remaining
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    if argv[0] in ("--version", "-V"):
        print(f"recdb {__version__}")
        return 0
    command, *rest = argv
    if command not in COMMANDS:
        print(f"unknown command {command!r}\n"
              f"usage: python -m repro COMMAND [ARGS...]\n"
              f"commands: {', '.join(sorted(COMMANDS))} "
              "(python -m repro --help for details)", file=sys.stderr)
        return 2
    if trace_file is None:
        return COMMANDS[command](rest)

    from .trace import TraceRecorder, recording
    recorder = TraceRecorder()
    with recording(recorder):
        status = COMMANDS[command](rest)
    trace = recorder.trace()
    trace.write_jsonl(trace_file)
    print(f"trace: {len(trace)} spans -> {trace_file}", file=sys.stderr)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
