"""recdb — computable queries over recursive (infinite) relational databases.

A faithful, executable reproduction of:

    Tirza Hirst & David Harel,
    "Completeness Results for Recursive Data Bases",
    PODS 1993; full version JCSS 52, 522-536 (1996).

Subpackages
-----------
``repro.core``
    Recursive databases, local isomorphism, local types, computable
    queries and genericity (Section 2).
``repro.logic``
    First-order logic substrate: the quantifier-free complete language
    L⁻ (Theorem 2.1), Ehrenfeucht–Fraïssé games, Hintikka formulas, and
    FO evaluation over highly symmetric databases (Theorem 6.3).
``repro.symmetric``
    Highly symmetric recursive databases: tuple equivalence,
    characteristic trees, the CB representation, partition refinement
    (Section 3), and constructions including recursive random structures.
``repro.qlhs``
    The complete query language QLhs: parser, interpreter over CB,
    derived operators, counters-as-ranks, and the Theorem 3.1 pipeline.
``repro.finite``
    The Chandra–Harel substrate: finite databases, relational algebra,
    the original QL, and finite unfoldings of infinite databases.
``repro.fcf``
    Finite/co-finite databases and the QLf+ language (Section 4).
``repro.machines``
    Computability substrate: Turing machines, oracle machines, counter
    machines, and generic machines GM / GMhs (Section 5).
``repro.bp``
    BP-completeness: automorphism-preserving relations, the Theorem 6.1
    reduction gadget, the unary case, and the Theorem 6.3 compiler.
``repro.graphs``
    A library of recursive graphs (lines, grids, cliques, component
    unions, the Rado graph) used throughout examples and benchmarks.
``repro.engine``
    The unified query-evaluation engine: a plan IR all four frontends
    (L⁻/FO, QLhs, QLf+, GMhs) lower into, fingerprint-keyed two-level
    caching, batched/parallel membership execution, and
    ``EngineStats`` metering.
"""

__version__ = "1.0.0"

from . import (  # noqa: F401
    bp,
    core,
    engine,
    fcf,
    finite,
    graphs,
    logic,
    machines,
    qlhs,
    symmetric,
    util,
)

from .core import (  # noqa: F401
    LocalType,
    LocallyGenericQuery,
    OracleQuery,
    PointedDatabase,
    RecursiveDatabase,
    RecursiveRelation,
    count_local_types,
    database_from_predicates,
    enumerate_local_types,
    finite_database,
    local_type_of,
    locally_isomorphic,
    naturals_domain,
    query_from_pointed_examples,
    rdb,
)
from .logic import (  # noqa: F401
    QFExpression,
    classes_of_expression,
    expression_for_query,
    parse,
)
from .engine import Engine, EngineStats  # noqa: F401
from .qlhs import PQPipeline, QLhsInterpreter, parse_program  # noqa: F401
from .symmetric import HSDatabase, infinite_clique, rado_hsdb  # noqa: F401
