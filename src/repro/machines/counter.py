"""Counter machines — the computational core behind QLhs completeness.

The proof of Theorem 3.1 observes that QLhs "can be thought of as having
counters: E↓↓ plays the role of 0, … e↑ and e↓ play the role of i+1 and
i−1", giving it "the power of general counter machines (and hence of
Turing machines), with numbers represented by the ranks of the relations
in the variables".

This module provides the counter-machine model itself — registers
holding naturals, with increment, guarded decrement, zero-jump,
unconditional jump, and halt — plus a small program library (addition,
multiplication, comparison).  :mod:`repro.qlhs.counter_compile` compiles
these programs into core QLhs, making the proof's observation a tested
artifact.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from ..errors import MachineError
from ..trace import Budget, limits, span
from ..trace.budget import as_budget


@dataclass(frozen=True)
class Inc:
    """``reg += 1``, fall through."""

    reg: int


@dataclass(frozen=True)
class Dec:
    """``reg -= 1`` if positive, else no-op; fall through."""

    reg: int


@dataclass(frozen=True)
class Jz:
    """Jump to ``target`` when ``reg == 0``, else fall through."""

    reg: int
    target: int


@dataclass(frozen=True)
class Jmp:
    """Unconditional jump."""

    target: int


@dataclass(frozen=True)
class Halt:
    """Stop; register contents are the output."""


Instruction = Inc | Dec | Jz | Jmp | Halt


class CounterMachine:
    """A counter machine: an instruction list over ``num_registers``."""

    def __init__(self, instructions: Sequence[Instruction],
                 num_registers: int, name: str = "M"):
        self.instructions = tuple(instructions)
        self.num_registers = num_registers
        self.name = name
        self._validate()

    def _validate(self) -> None:
        n = len(self.instructions)
        for pc, ins in enumerate(self.instructions):
            if isinstance(ins, (Inc, Dec)) and not 0 <= ins.reg < self.num_registers:
                raise MachineError(f"instruction {pc}: register {ins.reg} "
                                   f"out of range")
            if isinstance(ins, Jz):
                if not 0 <= ins.reg < self.num_registers:
                    raise MachineError(f"instruction {pc}: register out of range")
                if not 0 <= ins.target < n:
                    raise MachineError(f"instruction {pc}: jump target "
                                       f"{ins.target} out of range")
            if isinstance(ins, Jmp) and not 0 <= ins.target < n:
                raise MachineError(f"instruction {pc}: jump target out of range")

    def run(self, inputs: Sequence[int], fuel: int | None = None, *,
            budget: Budget | int | None = None) -> list[int]:
        """Execute; ``inputs`` seed the first registers; returns all
        registers at the halt instruction.

        One budget step is one executed instruction; ``fuel=N`` is the
        deprecated alias for ``budget=Budget(max_steps=N)`` (default
        :data:`repro.trace.limits.COUNTER_RUN`).
        """
        budget = as_budget(budget, fuel, default_steps=limits.COUNTER_RUN)
        regs = [0] * self.num_registers
        for i, v in enumerate(inputs):
            if v < 0:
                raise MachineError("counter registers hold naturals")
            regs[i] = v
        pc = 0
        with span("counter.run", machine=self.name) as sp:
            while True:
                budget.charge()
                ins = self.instructions[pc]
                if isinstance(ins, Halt):
                    sp.count("steps", budget.steps)
                    return regs
                if isinstance(ins, Inc):
                    regs[ins.reg] += 1
                    pc += 1
                elif isinstance(ins, Dec):
                    if regs[ins.reg] > 0:
                        regs[ins.reg] -= 1
                    pc += 1
                elif isinstance(ins, Jz):
                    pc = ins.target if regs[ins.reg] == 0 else pc + 1
                elif isinstance(ins, Jmp):
                    pc = ins.target
                else:
                    raise MachineError(f"unknown instruction {ins!r}")
                if pc >= len(self.instructions):
                    raise MachineError(f"{self.name}: fell off the program")

    def trace(self, inputs: Sequence[int], fuel: int | None = None, *,
              budget: Budget | int | None = None
              ) -> list[tuple[int, tuple[int, ...]]]:
        """Execution trace as ``(pc, registers)`` snapshots (for tests).

        Budgeted like :meth:`run` (``fuel`` is the deprecated alias).
        """
        budget = as_budget(budget, fuel, default_steps=limits.COUNTER_RUN)
        regs = [0] * self.num_registers
        for i, v in enumerate(inputs):
            regs[i] = v
        pc = 0
        out = [(pc, tuple(regs))]
        while not isinstance(self.instructions[pc], Halt):
            budget.charge()
            ins = self.instructions[pc]
            if isinstance(ins, Inc):
                regs[ins.reg] += 1
                pc += 1
            elif isinstance(ins, Dec):
                if regs[ins.reg] > 0:
                    regs[ins.reg] -= 1
                pc += 1
            elif isinstance(ins, Jz):
                pc = ins.target if regs[ins.reg] == 0 else pc + 1
            elif isinstance(ins, Jmp):
                pc = ins.target
            out.append((pc, tuple(regs)))
        return out

    def __repr__(self) -> str:
        return (f"CounterMachine({self.name}, {len(self.instructions)} "
                f"instructions, {self.num_registers} registers)")


# ---------------------------------------------------------------------------
# Program library.
# ---------------------------------------------------------------------------

def addition_machine() -> CounterMachine:
    """R0 := R0 + R1 (destroys R1)."""
    return CounterMachine([
        Jz(1, 4),      # 0: while R1 != 0:
        Dec(1),        # 1:   R1 -= 1
        Inc(0),        # 2:   R0 += 1
        Jmp(0),        # 3
        Halt(),        # 4
    ], num_registers=2, name="add")


def multiplication_machine() -> CounterMachine:
    """R0 := R0 * R1, using scratch R2, R3.

    Layout: repeatedly move one unit out of R0; for each unit add R1
    into R2 (via R3 to restore R1).
    """
    return CounterMachine([
        Jz(0, 11),     # 0:  while R0 != 0:
        Dec(0),        # 1:    R0 -= 1
        Jz(1, 7),      # 2:    while R1 != 0:
        Dec(1),        # 3:      R1 -= 1
        Inc(2),        # 4:      R2 += 1
        Inc(3),        # 5:      R3 += 1
        Jmp(2),        # 6:
        Jz(3, 0),      # 7:    while R3 != 0:  (restore R1 from R3)
        Dec(3),        # 8:      R3 -= 1
        Inc(1),        # 9:      R1 += 1
        Jmp(7),        # 10:
        Jz(2, 15),     # 11: move R2 into R0
        Dec(2),        # 12:
        Inc(0),        # 13:
        Jmp(11),       # 14:
        Halt(),        # 15:
    ], num_registers=4, name="mult")


def comparison_machine() -> CounterMachine:
    """R2 := 1 if R0 == R1 else 0 (destroys R0, R1)."""
    return CounterMachine([
        Jz(0, 5),      # 0: while R0 != 0:
        Dec(0),        # 1:
        Jz(1, 9),      # 2:   if R1 == 0: unequal
        Dec(1),        # 3:
        Jmp(0),        # 4:
        Jz(1, 7),      # 5: R0 == 0: if R1 == 0 goto equal
        Jmp(9),        # 6: else unequal
        Inc(2),        # 7: equal: R2 := 1
        Halt(),        # 8:
        Halt(),        # 9: unequal: R2 stays 0
    ], num_registers=3, name="eq")
