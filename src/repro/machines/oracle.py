"""Oracle machines for r-queries (Definition 2.4), as a low-level model.

Definition 2.4 defines a recursive r-query via "an oracle Turing machine
which, given a tuple u, uses oracles for the relations of the input data
base B to decide whether u ∈ Q(B)".  The high-level realization is
:class:`repro.core.query.OracleQuery` (an arbitrary Python procedure
behind the oracle interface); this module supplies the *machine-shaped*
realization — a small register program whose only interaction with the
database is the ``ASK`` instruction — so the library contains a model in
which "the machine can only ask questions of the form is u ∈ R" is a
syntactic fact, not a discipline.

Instruction set (registers hold domain elements; ``element_source``
enumerates the domain for ``NEXT``):

* ``INPUT i j``   — copy component ``j`` of the input tuple to register ``i``
* ``NEXT i``      — load the next domain element into register ``i``
* ``ASK r (i…) t``— ask "is (reg_{i…}) ∈ R_r?"; jump to ``t`` on yes
* ``EQ i j t``    — jump to ``t`` when registers ``i`` and ``j`` are equal
* ``JMP t``       — unconditional jump
* ``ACCEPT`` / ``REJECT`` — halt with the answer

All jumps fall through on the negative outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from ..core.query import DatabaseOracle, OracleQuery
from ..errors import MachineError
from ..trace import Budget, limits, span
from ..trace.budget import as_budget


@dataclass(frozen=True)
class Input:
    """``Rⱼ := uᵢ`` — load an input-tuple component into a register."""

    reg: int
    component: int


@dataclass(frozen=True)
class Next:
    """Advance a register to the next domain element."""

    reg: int


@dataclass(frozen=True)
class Ask:
    """One oracle question: jump if the registers' tuple is in Rᵢ."""

    relation: int
    regs: tuple[int, ...]
    target: int

    def __init__(self, relation: int, regs: Sequence[int], target: int):
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "regs", tuple(regs))
        object.__setattr__(self, "target", target)


@dataclass(frozen=True)
class EqJump:
    """Jump if two registers hold the same element."""

    left: int
    right: int
    target: int


@dataclass(frozen=True)
class Jump:
    """Unconditional jump."""

    target: int


@dataclass(frozen=True)
class Accept:
    """Halt accepting (``u ∈ Q(B)``)."""


@dataclass(frozen=True)
class Reject:
    """Halt rejecting (``u ∉ Q(B)``)."""


OracleInstruction = Input | Next | Ask | EqJump | Jump | Accept | Reject


class OracleProgram:
    """A register program deciding tuple membership through oracles."""

    def __init__(self, instructions: Sequence[OracleInstruction],
                 num_registers: int,
                 type_signature: Sequence[int], name: str = "M"):
        self.instructions = tuple(instructions)
        self.num_registers = num_registers
        self.type_signature = tuple(type_signature)
        self.name = name
        self._validate()

    def _validate(self) -> None:
        n = len(self.instructions)
        for pc, ins in enumerate(self.instructions):
            targets = []
            if isinstance(ins, (Ask, EqJump, Jump)):
                targets.append(ins.target)
            for t in targets:
                if not 0 <= t < n:
                    raise MachineError(
                        f"instruction {pc}: jump target {t} out of range")
            if isinstance(ins, Ask):
                if not 0 <= ins.relation < len(self.type_signature):
                    raise MachineError(
                        f"instruction {pc}: relation index out of range")
                if len(ins.regs) != self.type_signature[ins.relation]:
                    raise MachineError(
                        f"instruction {pc}: ASK arity mismatch")

    def run(self, oracle: DatabaseOracle, u: tuple,
            fuel: int | None = None, *,
            budget: Budget | int | None = None) -> bool:
        """Decide ``u ∈ Q(B)`` through the oracle.

        One budget step is one executed instruction (``ASK`` questions
        are additionally charged to the budget's oracle allowance);
        ``fuel=N`` is the deprecated alias for
        ``budget=Budget(max_steps=N)`` (default
        :data:`repro.trace.limits.ORACLE_RUN`).
        """
        budget = as_budget(budget, fuel, default_steps=limits.ORACLE_RUN)
        registers: list = [None] * self.num_registers
        enumerator = iter(oracle.domain)
        pc = 0
        with span("oracle.run", machine=self.name) as sp:
            while True:
                budget.charge()
                ins = self.instructions[pc]
                if isinstance(ins, Accept):
                    sp.count("steps", budget.steps)
                    return True
                if isinstance(ins, Reject):
                    sp.count("steps", budget.steps)
                    return False
                if isinstance(ins, Input):
                    if not 0 <= ins.component < len(u):
                        raise MachineError(
                            f"{self.name}: input component {ins.component} "
                            f"out of range for rank-{len(u)} tuple")
                    registers[ins.reg] = u[ins.component]
                    pc += 1
                elif isinstance(ins, Next):
                    registers[ins.reg] = next(enumerator)
                    pc += 1
                elif isinstance(ins, Ask):
                    args = tuple(registers[r] for r in ins.regs)
                    if any(a is None for a in args):
                        raise MachineError(
                            f"{self.name}: ASK with an uninitialized "
                            "register")
                    budget.charge_oracle()
                    sp.count("oracle_questions")
                    pc = (ins.target if oracle.ask(ins.relation, args)
                          else pc + 1)
                elif isinstance(ins, EqJump):
                    pc = (ins.target
                          if registers[ins.left] == registers[ins.right]
                          else pc + 1)
                elif isinstance(ins, Jump):
                    pc = ins.target
                else:
                    raise MachineError(f"unknown instruction {ins!r}")
                if pc >= len(self.instructions):
                    raise MachineError(f"{self.name}: fell off the program")

    def as_rquery(self, output_rank: int | None = None,
                  fuel: int | None = None, *,
                  budget: Budget | int | None = None) -> OracleQuery:
        """The r-query this machine computes (Definition 2.4).

        Each membership test runs under a *fork* of the given budget,
        so every tuple gets the full per-run allowance while deadlines
        and cancellation still span the whole query.
        """
        base = as_budget(budget, fuel, default_steps=limits.ORACLE_RUN)
        return OracleQuery(
            self.type_signature,
            lambda oracle, u: self.run(oracle, u, budget=base.fork()),
            output_rank=output_rank,
            name=self.name)


def membership_program(relation_index: int, arity: int,
                       type_signature: Sequence[int]) -> OracleProgram:
    """The identity query ``Q(B) = R_i`` as an oracle program."""
    instructions: list[OracleInstruction] = []
    for j in range(arity):
        instructions.append(Input(j, j))
    accept_at = arity + 2
    instructions.append(Ask(relation_index, tuple(range(arity)), accept_at))
    instructions.append(Reject())
    instructions.append(Accept())
    return OracleProgram(instructions, arity, type_signature,
                         name=f"member-R{relation_index + 1}")


def symmetric_pair_program(type_signature: Sequence[int] = (2,)
                           ) -> OracleProgram:
    """``Q(B) = {(x, y) : (x, y) ∈ R₁ and (y, x) ∈ R₁}`` — a genuinely
    oracle-using, locally generic example program."""
    return OracleProgram([
        Input(0, 0),                  # 0
        Input(1, 1),                  # 1
        Ask(0, (0, 1), 4),            # 2: (x,y) ∈ R1?
        Reject(),                     # 3
        Ask(0, (1, 0), 6),            # 4: (y,x) ∈ R1?
        Reject(),                     # 5
        Accept(),                     # 6
    ], num_registers=2, type_signature=type_signature, name="sym-pair")
