"""The Theorem 5.1 pipeline: computing hs-r-queries with a GMhs.

The proof's program ``P_Q`` stages:

1. **load** — bring the ``Cᵢ`` and enough of the tree onto the tape via
   repeated ``load`` operations, discarding duplicate-drawing units and
   letting collapse merge the survivors (the Section 5 protocol;
   implemented with real spawn/collapse mechanics);
2. **encode** — "each unit-GMhs encodes C₁,…,C_k and Tⁿ by tuples of
   integers": assign indices to the distinct elements drawn, producing
   an ℕ-model;
3. **run M** — the Turing-machine stage on the integer model, with
   ``≅_B`` questions (transition type 4) answered through the oracle and
   tree questions by loading more levels (action (v));
4. **store & collapse** — decode the output into representatives, store
   them (action (vi)), erase tapes, and halt: "all the unit-GMhs's
   collapse into a single unit-GMhs whose relational store is the union
   of their stores.  Since M is generic, the relational stores of all
   the unit-GMhs are the same".

The machine ``M`` uses the same :class:`~repro.qlhs.completeness.ModelOracle`
interface as the QLhs pipeline, so one query procedure runs under both
engines — the integration tests' "all routes agree" checks rest on that.
"""

from __future__ import annotations

from ..errors import MachineError
from ..qlhs.completeness import ModelOracle, QueryProcedure
from ..qlhs.interpreter import Value
from ..symmetric.hsdb import HSDatabase
from ..trace import Budget, limits, span
from ..trace.budget import as_budget
from .generic import RunMetrics
from .gmhs import GMhsMachine, Halt, Load, StoreCanonical


def _loader_machine(hsdb: HSDatabase, depth: int) -> GMhsMachine:
    """Stage 1 as a GMhs: load every Cᵢ tuple and every path of
    ``T^depth`` onto the tape (one segment each), using the discard-
    duplicates-and-collapse discipline; survivors store their draws
    into scratch relations and halt with empty tapes."""
    sizes = [len(reps) for reps in hsdb.representatives]
    # Tuples expected on tape once relations 0..i are fully drawn.
    cumulative = [sum(sizes[: i + 1]) for i in range(len(sizes))]

    def next_nonempty(i: int) -> int | None:
        for j in range(i, len(sizes)):
            if sizes[j] > 0:
                return j
        return None

    def emit(tape):
        if not tape:
            return Halt(())
        return StoreCanonical("DRAWN", tape[-1], "emit", tape[:-1])

    def transition(state, tape, flags, equiv):
        if state == "start":
            first = next_nonempty(0)
            if first is None:
                return Halt(())
            return Load(f"C{first + 1}", f"check-{first}")
        if state.startswith("check-"):
            i = int(state.split("-", 1)[1])
            # Duplicates are judged within the current relation's draws
            # (the protocol loads each Cᵢ separately; two relations may
            # legitimately share a representative).
            start_of_current = cumulative[i] - sizes[i]
            if tape[-1] in tape[start_of_current:-1]:
                return Halt(())  # duplicate draw: die into the pool
            if len(tape) < cumulative[i]:
                return Load(f"C{i + 1}", f"check-{i}")
            following = next_nonempty(i + 1)
            if following is not None:
                return Load(f"C{following + 1}", f"check-{following}")
            return emit(tape)
        if state == "emit":
            return emit(tape)
        raise MachineError(f"unknown state {state!r}")

    return GMhsMachine(hsdb, transition, name="load-stage")


def run_query_gmhs(hsdb: HSDatabase, machine: QueryProcedure,
                   search_window: int = 512,
                   fuel: int | None = None, *,
                   budget: Budget | int | None = None
                   ) -> tuple[Value, RunMetrics]:
    """Run a recursive generic query end to end, GMhs-style.

    Returns the answer (as class representatives) and the metrics of the
    GMhs loading stage — the spawn/collapse accounting the Theorem 5.1
    narrative is about.

    The whole pipeline runs under one :class:`~repro.trace.Budget`
    (``fuel=N`` is the deprecated alias, default
    :data:`repro.trace.limits.GMHS_PIPELINE`): the loading stage
    charges per synchronous GMhs step, and the budget's deadline /
    cancellation flag are re-checked between stages so a cancelled run
    stops at the next stage boundary.
    """
    budget = as_budget(budget, fuel, default_steps=limits.GMHS_PIPELINE)
    with span("gmhs.pipeline", database=getattr(hsdb, "name", "?")):
        # Stage 1: load the C's with genuine spawn/collapse mechanics.
        with span("gmhs.load"):
            loader = _loader_machine(hsdb, depth=0)
            store, metrics = loader.run_on_cb(budget=budget)
        drawn = store.get("DRAWN", frozenset())
        expected = set().union(*hsdb.representatives) if any(
            hsdb.representatives) else set()
        if drawn != frozenset(expected):
            raise MachineError(
                "the loading stage did not reproduce the representative "
                "sets")

        # Stage 2: encode by integers — the ModelOracle's positions,
        # seeded from the drawn elements in deterministic order.
        budget.check()
        with span("gmhs.encode"):
            elements: list = []
            for t in sorted(drawn, key=repr):
                for x in t:
                    if x not in elements:
                        elements.append(x)
            if not elements:
                elements = [hsdb.domain.first(1)[0]]
            oracle = ModelOracle(hsdb, tuple(elements),
                                 search_window=search_window)

        # Stage 3: the Turing-machine stage (tree/≅ questions through
        # the oracle, growing the model as the proof's "load more
        # levels" step).
        budget.check()
        with span("gmhs.machine") as sp:
            before = hsdb.equiv.calls
            output = machine(oracle)
            sp.count("oracle_questions", hsdb.equiv.calls - before)

        # Stage 4: decode and store canonically (the final collapse).
        budget.check()
        with span("gmhs.store"):
            if not output:
                return Value(0, frozenset()), metrics
            ranks = {len(pos) for pos in output}
            if len(ranks) != 1:
                raise MachineError("a generic query yields one output rank")
            reps = {
                hsdb.canonical_representative(
                    tuple(oracle.elements[p] for p in pos))
                for pos in output
            }
            return Value(ranks.pop(), frozenset(reps)), metrics
