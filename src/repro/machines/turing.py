"""Single-tape Turing machines.

The paper's objects are defined in terms of Turing machines throughout:
a recursive relation "can be represented by a Turing machine, which on
input u decides whether the tuple u is in R" (Section 2), and the
non-closure example of the introduction is built from the predicate
"the y-th Turing machine halts on input z after x steps".  This module
provides the substrate: a standard deterministic single-tape TM with
step-bounded execution, plus an effective enumeration of small machines
that makes the halting-step relation a genuine recursive relation with
non-trivial behaviour (see ``examples/halting_projection.py`` and
``tests/test_core/test_nonclosure.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Mapping, Sequence

from ..errors import MachineError, OutOfFuel
from ..trace import Budget, span

LEFT = -1
RIGHT = 1
STAY = 0

BLANK = "_"

Transition = tuple[str, str, int]  # (next_state, write_symbol, move)


@dataclass
class RunResult:
    """Outcome of a (possibly step-bounded) TM run."""

    halted: bool
    accepted: bool
    steps: int
    tape: dict[int, str]
    state: str

    def tape_text(self) -> str:
        """The written tape segment as a string (blanks filled in)."""
        if not self.tape:
            return ""
        lo, hi = min(self.tape), max(self.tape)
        return "".join(self.tape.get(i, BLANK) for i in range(lo, hi + 1))


class TuringMachine:
    """A deterministic single-tape Turing machine.

    ``transitions`` maps ``(state, symbol)`` to
    ``(next_state, write, move)``; a missing entry halts the machine
    (accepting iff in ``accept_state``).
    """

    def __init__(self, transitions: Mapping[tuple[str, str], Transition],
                 start_state: str = "q0", accept_state: str = "qa",
                 reject_state: str = "qr", name: str = "M"):
        self.transitions = dict(transitions)
        self.start_state = start_state
        self.accept_state = accept_state
        self.reject_state = reject_state
        self.name = name
        for (state, symbol), (nxt, write, move) in self.transitions.items():
            if move not in (LEFT, RIGHT, STAY):
                raise MachineError(
                    f"invalid move {move!r} in transition ({state}, {symbol})")

    def run(self, tape_input: Sequence[str] | str, max_steps: int,
            raise_on_timeout: bool = False, *,
            budget: Budget | None = None) -> RunResult:
        """Execute for at most ``max_steps`` steps.

        ``max_steps`` is *semantic* — the paper's "halts within k
        steps" predicate needs an exact step bound, so it is not a
        divergence guard and stays an integer.  An optional
        :class:`~repro.trace.Budget` is additionally charged per step,
        adding deadline and cancellation enforcement on top.
        """
        tape: dict[int, str] = {
            i: s for i, s in enumerate(tape_input) if s != BLANK}
        state = self.start_state
        head = 0
        steps = 0
        with span("turing.run", machine=self.name, max_steps=max_steps):
            return self._run_loop(tape, state, head, steps, max_steps,
                                  raise_on_timeout, budget)

    def _run_loop(self, tape, state, head, steps, max_steps,
                  raise_on_timeout, budget) -> RunResult:
        """The transition loop of :meth:`run` (split out for tracing)."""
        while True:
            # Halting is checked before the budget: a machine that
            # reaches a halting configuration after exactly k transitions
            # "halts within k steps".
            if state in (self.accept_state, self.reject_state):
                return RunResult(True, state == self.accept_state,
                                 steps, tape, state)
            symbol = tape.get(head, BLANK)
            key = (state, symbol)
            if key not in self.transitions:
                return RunResult(True, state == self.accept_state,
                                 steps, tape, state)
            if steps >= max_steps:
                break
            if budget is not None:
                budget.charge()
            state, write, move = self.transitions[key]
            if write == BLANK:
                tape.pop(head, None)
            else:
                tape[head] = write
            head += move
            steps += 1
        if raise_on_timeout:
            raise OutOfFuel(f"{self.name} did not halt in {max_steps} steps",
                            steps=steps)
        return RunResult(False, False, steps, tape, state)

    def halts_within(self, tape_input: Sequence[str] | str,
                     steps: int) -> bool:
        """Whether the machine halts on the input within ``steps`` steps.

        This is the decidable predicate at the heart of the paper's
        non-closure example: R(x, y, z) ⇔ machine y halts on z in x steps.
        """
        return self.run(tape_input, steps).halted

    def accepts(self, tape_input: Sequence[str] | str,
                max_steps: int = 10_000, *,
                budget: Budget | None = None) -> bool:
        """Whether the machine accepts the input within ``max_steps``
        (raising :class:`OutOfFuel` if it does not halt in time)."""
        result = self.run(tape_input, max_steps, raise_on_timeout=True,
                          budget=budget)
        return result.accepted

    def __repr__(self) -> str:
        return f"TuringMachine({self.name}, {len(self.transitions)} transitions)"


# ---------------------------------------------------------------------------
# Machine library.
# ---------------------------------------------------------------------------

def parity_machine() -> TuringMachine:
    """Accept binary strings with an even number of 1s."""
    return TuringMachine({
        ("q0", "0"): ("q0", "0", RIGHT),
        ("q0", "1"): ("q1", "1", RIGHT),
        ("q1", "0"): ("q1", "0", RIGHT),
        ("q1", "1"): ("q0", "1", RIGHT),
        ("q0", BLANK): ("qa", BLANK, STAY),
        ("q1", BLANK): ("qr", BLANK, STAY),
    }, name="even-ones")


def unary_successor_machine() -> TuringMachine:
    """Append one '1' to a unary numeral, then accept."""
    return TuringMachine({
        ("q0", "1"): ("q0", "1", RIGHT),
        ("q0", BLANK): ("qa", "1", STAY),
    }, name="succ")


def loop_machine() -> TuringMachine:
    """Never halts (shuttles over a single cell)."""
    return TuringMachine({
        ("q0", BLANK): ("q1", "1", RIGHT),
        ("q1", BLANK): ("q0", BLANK, LEFT),
        ("q0", "1"): ("q1", "1", RIGHT),
        ("q1", "1"): ("q0", "1", LEFT),
    }, name="loop")


def slow_halt_machine() -> TuringMachine:
    """Walks to the end of the input, then back, then accepts —
    halting time grows with input length."""
    return TuringMachine({
        ("q0", "1"): ("q0", "1", RIGHT),
        ("q0", BLANK): ("q1", BLANK, LEFT),
        ("q1", "1"): ("q1", "1", LEFT),
        ("q1", BLANK): ("qa", BLANK, STAY),
    }, name="there-and-back")


# ---------------------------------------------------------------------------
# An effective enumeration of small machines.
# ---------------------------------------------------------------------------

_ALPHABET = ("0", "1", BLANK)
_STATES = ("q0", "q1")
_TARGETS = ("q0", "q1", "qa")
_MOVES = (LEFT, RIGHT)


def _transition_choices() -> list[Transition | None]:
    out: list[Transition | None] = [None]  # None = halt on this key
    for target in _TARGETS:
        for write in _ALPHABET:
            for move in _MOVES:
                out.append((target, write, move))
    return out


_CHOICES = _transition_choices()
_KEYS = [(s, a) for s in _STATES for a in _ALPHABET]


def machine_count() -> int:
    """Size of the enumerated family (|choices| ^ |keys|)."""
    return len(_CHOICES) ** len(_KEYS)


def machine_from_index(index: int) -> TuringMachine:
    """The ``index``-th machine of an effective enumeration.

    Decodes the index as a mixed-radix numeral selecting one transition
    (or a halt) for each ``(state, symbol)`` key of a 2-state machine
    over ``{0, 1, blank}``.  Indices beyond the family size wrap around,
    so every natural number names a machine — the "y-th Turing machine"
    of the paper's introduction, made concrete.
    """
    if index < 0:
        raise MachineError("machine indices are naturals")
    index %= machine_count()
    label = index
    transitions: dict[tuple[str, str], Transition] = {}
    for key in _KEYS:
        index, digit = divmod(index, len(_CHOICES))
        choice = _CHOICES[digit]
        if choice is not None:
            transitions[key] = choice
    return TuringMachine(transitions, name=f"M{label}")


def halting_steps_relation(x: int, y: int, z: int) -> bool:
    """The introduction's primitive recursive relation R(x, y, z):

    "the y-th Turing machine halts on input z after x steps" — here:
    halts on the unary numeral of z within x steps.  Decidable; its
    projection on (y, z) is the (undecidable) halting predicate for the
    enumerated family.
    """
    machine = machine_from_index(y)
    return machine.run("1" * z, max_steps=x).halted
