"""A textual assembler for counter machines.

Counter machines are the power source of Theorem 3.1 (via
:mod:`repro.qlhs.counter_compile`); the assembler makes them pleasant to
write, read, and test::

    # R0 := R0 + R1
    loop:  jz r1 end
           dec r1
           inc r0
           jmp loop
    end:   halt

Syntax: one instruction per line; ``#`` starts a comment; a leading
``name:`` defines a label; operands are ``rN`` registers and label or
numeric jump targets.  ``disassemble`` renders a machine back to this
format (with generated labels), and round-trips with ``assemble``.
"""

from __future__ import annotations

import re

from ..errors import ParseError
from .counter import CounterMachine, Dec, Halt, Inc, Instruction, Jmp, Jz

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z_0-9]*):")
_REG_RE = re.compile(r"^r(\d+)$")


def assemble(text: str, name: str = "M") -> CounterMachine:
    """Parse assembly text into a :class:`CounterMachine`."""
    lines = []
    labels: dict[str, int] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        while True:
            m = _LABEL_RE.match(line)
            if m is None:
                break
            label = m.group(1)
            if label in labels:
                raise ParseError(f"line {lineno}: duplicate label {label!r}")
            labels[label] = len(lines)
            line = line[m.end():].strip()
        if line:
            lines.append((lineno, line))

    instructions: list[Instruction] = []
    max_reg = -1

    def parse_reg(token: str, lineno: int) -> int:
        m = _REG_RE.match(token)
        if m is None:
            raise ParseError(
                f"line {lineno}: expected a register (r0, r1, …), "
                f"got {token!r}")
        return int(m.group(1))

    def parse_target(token: str, lineno: int) -> int:
        if token.isdigit():
            return int(token)
        if token in labels:
            return labels[token]
        raise ParseError(f"line {lineno}: unknown label {token!r}")

    for lineno, line in lines:
        parts = line.split()
        op = parts[0].lower()
        if op == "inc" and len(parts) == 2:
            reg = parse_reg(parts[1], lineno)
            instructions.append(Inc(reg))
        elif op == "dec" and len(parts) == 2:
            reg = parse_reg(parts[1], lineno)
            instructions.append(Dec(reg))
        elif op == "jz" and len(parts) == 3:
            reg = parse_reg(parts[1], lineno)
            instructions.append(Jz(reg, parse_target(parts[2], lineno)))
        elif op == "jmp" and len(parts) == 2:
            instructions.append(Jmp(parse_target(parts[1], lineno)))
        elif op == "halt" and len(parts) == 1:
            instructions.append(Halt())
        else:
            raise ParseError(f"line {lineno}: cannot parse {line!r}")
        for ins in instructions[-1:]:
            if isinstance(ins, (Inc, Dec, Jz)):
                max_reg = max(max_reg, ins.reg)

    return CounterMachine(instructions, num_registers=max_reg + 1 or 1,
                          name=name)


def disassemble(machine: CounterMachine) -> str:
    """Render a machine back to assembly text (round-trips with
    :func:`assemble` up to label naming)."""
    targets = set()
    for ins in machine.instructions:
        if isinstance(ins, Jz):
            targets.add(ins.target)
        elif isinstance(ins, Jmp):
            targets.add(ins.target)
    labels = {pc: f"L{pc}" for pc in sorted(targets)}

    out_lines = []
    for pc, ins in enumerate(machine.instructions):
        prefix = f"{labels[pc]}:" if pc in labels else ""
        prefix = prefix.ljust(6)
        if isinstance(ins, Inc):
            body = f"inc r{ins.reg}"
        elif isinstance(ins, Dec):
            body = f"dec r{ins.reg}"
        elif isinstance(ins, Jz):
            body = f"jz r{ins.reg} {labels[ins.target]}"
        elif isinstance(ins, Jmp):
            body = f"jmp {labels[ins.target]}"
        elif isinstance(ins, Halt):
            body = "halt"
        else:
            raise TypeError(f"unknown instruction {ins!r}")
        out_lines.append(prefix + body)
    return "\n".join(out_lines) + "\n"


SUBTRACT = """
# r0 := max(0, r0 - r1)
loop:  jz r1 end
       dec r1
       dec r0
       jmp loop
end:   halt
"""

COPY = """
# r1 := r0 (via r2), preserving r0
move:  jz r0 back
       dec r0
       inc r1
       inc r2
       jmp move
back:  jz r2 end
       dec r2
       inc r0
       jmp back
end:   halt
"""

DOUBLE = """
# r0 := 2 * r0 (via r1)
spread: jz r0 gather
        dec r0
        inc r1
        inc r1
        jmp spread
gather: jz r1 end
        dec r1
        inc r0
        jmp gather
end:    halt
"""


def subtract_machine() -> CounterMachine:
    """r0 := r0 ∸ r1 (truncated subtraction)."""
    return assemble(SUBTRACT, name="sub")


def copy_machine() -> CounterMachine:
    """r1 := r0, preserving r0."""
    return assemble(COPY, name="copy")


def double_machine() -> CounterMachine:
    """r0 := 2 · r0."""
    return assemble(DOUBLE, name="double")
