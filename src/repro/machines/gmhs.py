"""GMhs — generic machines over highly symmetric databases (Section 5).

The paper turns [AV]'s GMs into an hs-r-complete language: "the
relational store of the GMhs will contain C₁,…,C_k as finite relations,
and the GMhs will use the oracles for T_B and ≅_B in its calculations".
On top of the GM execution model (:mod:`repro.machines.generic`) a GMhs
adds the transition capabilities the paper enumerates:

* tests may consult equality of tape entries *and* the oracle question
  "is u ≅_B v?" (the transition function receives an ``equiv`` callable
  over tape-designated tuples — items 3 and 4 of the transition list);
* action (v): load the offspring of the current tuple from ``T_B`` onto
  the tape (one spawned copy per child — the tree oracle);
* action (vi): store a tuple from ``T_B`` equivalent to the current
  tuple in the relational store (canonicalization before storing).

Theorem 5.1's program starts by loading the ``Cᵢ`` and tree levels via
the Section 5 loading protocol (implemented for GM and reused here),
then proceeds Turing-style; :func:`relation_loader` and
:func:`children_explorer` are the reusable stages, and the tests verify
the spawn/collapse accounting the proof's narrative describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Mapping

from ..errors import MachineError
from ..symmetric.hsdb import HSDatabase
from ..trace import Budget, limits
from ..trace.budget import as_budget
from .generic import (
    Action,
    ClearRelation,
    Continue,
    GenericMachine,
    Halt,
    HALT_STATE,
    Load,
    RunMetrics,
    Store,
    StoreTuple,
    Tape,
    UnitGM,
)


@dataclass(frozen=True)
class LoadChildren:
    """Action (v): spawn one copy per tree child of the *current tuple*
    (the last tape entry), appending the extended tuple."""

    state: str


@dataclass(frozen=True)
class StoreCanonical:
    """Action (vi): store the representative equivalent to ``value``."""

    relation: str
    value: tuple
    state: str
    tape: Tape


GMhsAction = Action | LoadChildren | StoreCanonical

GMhsTransition = Callable[
    [str, Tape, Mapping[str, bool], Callable[[tuple, tuple], bool]],
    GMhsAction]
"""``transition(state, tape, store_empty_flags, equiv) -> action``."""


class GMhsMachine(GenericMachine):
    """A GMhs: GM semantics plus the T_B and ≅_B oracles."""

    def __init__(self, hsdb: HSDatabase, transition: GMhsTransition,
                 start_state: str = "start", name: str = "GMhs"):
        self.hsdb = hsdb
        self._gmhs_transition = transition
        super().__init__(self._adapt, start_state=start_state, name=name)

    def _adapt(self, state: str, tape: Tape,
               flags: Mapping[str, bool]) -> Action:
        # The GM loop expects an Action; GMhs-specific actions are
        # rewritten in _step below, so just thread the oracles through.
        return self._gmhs_transition(state, tape, flags,
                                     self.hsdb.equivalent)

    def _step(self, unit: UnitGM, metrics: RunMetrics) -> list[UnitGM]:
        flags = {k: not v for k, v in unit.store.items()}
        action = self._gmhs_transition(unit.state, unit.tape, flags,
                                       self.hsdb.equivalent)
        if isinstance(action, LoadChildren):
            if not unit.tape or not isinstance(unit.tape[-1], tuple):
                raise MachineError(
                    f"{self.name}: LoadChildren needs a tuple as the "
                    "current (last) tape entry")
            current = unit.tape[-1]
            rep = self.hsdb.canonical_representative(current)
            spawned = [
                UnitGM(action.state,
                       unit.tape[:-1] + (rep + (child,),),
                       dict(unit.store))
                for child in self.hsdb.tree.children(rep)
            ]
            metrics.spawns += max(0, len(spawned) - 1)
            return spawned
        if isinstance(action, StoreCanonical):
            rep = self.hsdb.canonical_representative(tuple(action.value))
            store = dict(unit.store)
            store[action.relation] = store.get(
                action.relation, frozenset()) | {rep}
            return [UnitGM(action.state, action.tape, store)]
        # Plain GM actions: delegate (re-dispatch on the computed action).
        return self._apply_plain(unit, action, metrics)

    def _apply_plain(self, unit: UnitGM, action: Action,
                     metrics: RunMetrics) -> list[UnitGM]:
        if isinstance(action, Halt):
            return [UnitGM(HALT_STATE, action.tape, unit.store)]
        if isinstance(action, Continue):
            return [UnitGM(action.state, action.tape, unit.store)]
        if isinstance(action, Load):
            tuples = unit.store.get(action.relation, frozenset())
            spawned = [
                UnitGM(action.state, unit.tape + (t,), dict(unit.store))
                for t in sorted(tuples, key=repr)
            ]
            metrics.spawns += max(0, len(spawned) - 1)
            return spawned
        if isinstance(action, StoreTuple):
            store = dict(unit.store)
            store[action.relation] = store.get(
                action.relation, frozenset()) | {tuple(action.value)}
            return [UnitGM(action.state, action.tape, store)]
        if isinstance(action, ClearRelation):
            store = dict(unit.store)
            store[action.relation] = frozenset()
            return [UnitGM(action.state, action.tape, store)]
        raise MachineError(f"unknown action {action!r}")

    def run_on_cb(self, fuel: int | None = None, *,
                  budget: Budget | int | None = None
                  ) -> tuple[Store, RunMetrics]:
        """Run with the CB representative sets as the input store
        (relations named ``C1``, ``C2``, …).

        ``fuel=N`` is the deprecated alias for
        ``budget=Budget(max_steps=N)`` (default
        :data:`repro.trace.limits.GMHS_RUN_ON_CB`).
        """
        budget = as_budget(budget, fuel,
                           default_steps=limits.GMHS_RUN_ON_CB)
        store = {f"C{i + 1}": reps
                 for i, reps in enumerate(self.hsdb.representatives)}
        return self.run(store, budget=budget)


def children_explorer(hsdb: HSDatabase, depth: int,
                      output: str = "LEVEL") -> GMhsMachine:
    """A GMhs program materializing ``T^depth`` in the store.

    Demonstrates action (v): starting from the empty tuple, repeatedly
    load children; at the target depth, store the path canonically
    (action (vi)) and erase the tape — all units collapse into one whose
    ``output`` relation is exactly the level.
    """

    def transition(state, tape, flags, equiv):
        if state == "start":
            return Continue("explore", ((),))
        if state == "explore":
            current = tape[-1]
            if len(current) == depth:
                return StoreCanonical(output, current, "emit", ())
            return LoadChildren("explore")
        if state == "emit":
            return Halt(())
        raise MachineError(f"unknown state {state!r}")

    return GMhsMachine(hsdb, transition, name=f"explore({depth})")


def equivalence_filter(hsdb: HSDatabase, relation: str = "C1",
                       output: str = "OUT") -> GMhsMachine:
    """A GMhs program using the ≅_B test (transition item 4): keep the
    representatives of ``relation`` whose swap is equivalent to
    themselves (the symmetric classes)."""

    def transition(state, tape, flags, equiv):
        if state == "start":
            return Load(relation, "test")
        if state == "test":
            u = tape[-1]
            if len(u) >= 2:
                swapped = u[:-2] + (u[-1], u[-2])
                if equiv(u, swapped):
                    return StoreCanonical(output, u, "emit", ())
            return Halt(())
        if state == "emit":
            return Halt(())
        raise MachineError(f"unknown state {state!r}")

    return GMhsMachine(hsdb, transition, name="symmetric-filter")
