"""Computability substrate: Turing, oracle, counter, and generic machines.

* :mod:`~repro.machines.turing` — single-tape TMs and the effective
  enumeration behind the paper's halting-steps relation (§1, §2);
* :mod:`~repro.machines.oracle` — register machines whose only database
  access is the ``ASK`` instruction (Definition 2.4 as syntax);
* :mod:`~repro.machines.counter` — counter machines, the power source
  of Theorem 3.1 via :mod:`repro.qlhs.counter_compile`;
* :mod:`~repro.machines.generic` — [AV] generic machines for finite
  databases: spawn, synchronous steps, collapse (Section 5);
* :mod:`~repro.machines.gmhs` — GMhs: generic machines with the T_B and
  ≅_B oracles (Theorem 5.1).
"""

from .assembler import (
    assemble,
    copy_machine,
    disassemble,
    double_machine,
    subtract_machine,
)
from .counter import (
    CounterMachine,
    Dec,
    Halt as CounterHalt,
    Inc,
    Jmp,
    Jz,
    addition_machine,
    comparison_machine,
    multiplication_machine,
)
from .generic import (
    Action,
    ClearRelation,
    Continue,
    GenericMachine,
    HALT_STATE,
    Halt,
    Load,
    RunMetrics,
    StoreTuple,
    UnitGM,
    loading_protocol,
)
from .gmhs_pipeline import run_query_gmhs
from .gmhs import (
    GMhsMachine,
    LoadChildren,
    StoreCanonical,
    children_explorer,
    equivalence_filter,
)
from .oracle import (
    Accept,
    Ask,
    EqJump,
    Input,
    Jump,
    Next,
    OracleProgram,
    Reject,
    membership_program,
    symmetric_pair_program,
)
from .turing import (
    BLANK,
    LEFT,
    RIGHT,
    STAY,
    RunResult,
    TuringMachine,
    halting_steps_relation,
    loop_machine,
    machine_count,
    machine_from_index,
    parity_machine,
    slow_halt_machine,
    unary_successor_machine,
)

__all__ = [
    "Accept", "Action", "Ask", "BLANK", "ClearRelation", "Continue",
    "CounterHalt", "CounterMachine", "Dec", "EqJump", "GMhsMachine",
    "GenericMachine", "HALT_STATE", "Halt", "Inc", "Input", "Jmp",
    "Jump", "Jz", "LEFT", "Load", "LoadChildren", "Next", "OracleProgram",
    "RIGHT", "Reject", "RunMetrics", "RunResult", "STAY", "StoreCanonical",
    "StoreTuple", "TuringMachine", "UnitGM", "addition_machine",
    "children_explorer", "comparison_machine", "equivalence_filter",
    "assemble", "copy_machine", "disassemble", "double_machine",
    "halting_steps_relation", "loading_protocol", "loop_machine",
    "subtract_machine",
    "machine_count", "machine_from_index", "membership_program",
    "multiplication_machine", "parity_machine", "run_query_gmhs",
    "slow_halt_machine",
    "symmetric_pair_program", "unary_successor_machine",
]
