"""Generic machines (GM) of Abiteboul & Vianu, for finite databases.

Section 5 rephrases [AV]: "A GM consists of a TM interacting with a
relational store. … Loading a relation with n tuples to the tape has the
effect of spawning n copies of the machine, with one tuple appended to
the tape of each copy. … If several unit-GM's simultaneously reach the
same state and identical tape contents, they collapse automatically into
a single unit-GM, whose relational store is the union of their
relational stores."

This module implements that execution model:

* a :class:`UnitGM` is a ``(state, tape, store)`` triple;
* all units step *synchronously*; after every step, units agreeing on
  ``(state, tape)`` collapse, unioning their stores;
* the run ends when every unit is halted; a successful computation ends
  with a single halted unit with an empty tape (checked).

Simplifications, documented: the tape is a tuple of *entries* where a
loaded database tuple occupies one entry (rather than one cell per
symbol), and the per-unit finite control is a Python transition function
from ``(state, tape, store-emptiness flags)`` to an :class:`Action` —
the store-emptiness flags are exactly what the Theorem 5.1 loading
protocol's "if the appropriate store in the collapsed machine is empty"
step inspects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Mapping

from ..errors import MachineError
from ..trace import Budget, limits, span
from ..trace.budget import as_budget

Tape = tuple
Store = dict  # name -> frozenset of tuples

HALT_STATE = "HALT"


@dataclass(frozen=True)
class Continue:
    """Move to ``state`` with the rewritten ``tape``."""

    state: str
    tape: Tape


@dataclass(frozen=True)
class Load:
    """Spawn one copy per tuple of ``relation`` (from the unit's store),
    appending the tuple as a tape entry; each copy enters ``state``."""

    relation: str
    state: str


@dataclass(frozen=True)
class StoreTuple:
    """Add ``value`` to store ``relation``; continue at ``state``/``tape``."""

    relation: str
    value: tuple
    state: str
    tape: Tape


@dataclass(frozen=True)
class ClearRelation:
    """Empty store ``relation``; continue at ``state``/``tape``."""

    relation: str
    state: str
    tape: Tape


@dataclass(frozen=True)
class Halt:
    """Enter the halting state with the given tape."""

    tape: Tape = ()


Action = Continue | Load | StoreTuple | ClearRelation | Halt

TransitionFn = Callable[[str, Tape, Mapping[str, bool]], Action]
"""``transition(state, tape, store_empty_flags) -> Action``."""


@dataclass
class UnitGM:
    """One live unit of a generic machine (state, tape, store)."""

    state: str
    tape: Tape
    store: Store

    def key(self) -> tuple[str, Tape]:
        """The collapse key: units agreeing here are duplicates."""
        return (self.state, self.tape)

    @property
    def halted(self) -> bool:
        """Whether the unit has reached the halt state."""
        return self.state == HALT_STATE


@dataclass
class RunMetrics:
    """Operational counters of one GM run (steps/spawns/collapses)."""

    steps: int = 0
    spawns: int = 0
    collapses: int = 0
    peak_units: int = 1


class GenericMachine:
    """A GM: transition function + named input relations."""

    def __init__(self, transition: TransitionFn, start_state: str = "start",
                 name: str = "GM"):
        self.transition = transition
        self.start_state = start_state
        self.name = name

    def run(self, input_store: Mapping[str, frozenset],
            fuel: int | None = None, *,
            budget: Budget | int | None = None) -> tuple[Store, RunMetrics]:
        """Execute from a single unit with the input relations in store.

        Returns the final (single) unit's store and the run metrics.
        Raises :class:`MachineError` if the computation does not end
        with exactly one halted unit with an empty tape.

        One budget step is one *synchronous* step of all live units;
        ``fuel=N`` is the deprecated alias for
        ``budget=Budget(max_steps=N)`` (default
        :data:`repro.trace.limits.GM_RUN`).
        """
        budget = as_budget(budget, fuel, default_steps=limits.GM_RUN)
        units = [UnitGM(self.start_state, (),
                        {k: frozenset(v) for k, v in input_store.items()})]
        metrics = RunMetrics()
        with span("gm.run", machine=self.name) as sp:
            while not all(u.halted for u in units):
                budget.charge()
                metrics.steps += 1
                next_units: list[UnitGM] = []
                for unit in units:
                    if unit.halted:
                        next_units.append(unit)
                        continue
                    next_units.extend(self._step(unit, metrics))
                units = self._collapse(next_units, metrics)
                metrics.peak_units = max(metrics.peak_units, len(units))
                if not units:
                    raise MachineError(
                        f"{self.name}: all units vanished (Load on an empty "
                        "relation)")
            sp.count("steps", metrics.steps)
            sp.count("spawns", metrics.spawns)
            sp.count("collapses", metrics.collapses)
        if len(units) != 1:
            raise MachineError(
                f"{self.name}: computation ended with {len(units)} units; "
                "a GM must collapse to a single unit")
        final = units[0]
        if final.tape != ():
            raise MachineError(
                f"{self.name}: final unit's tape is not empty: {final.tape!r}")
        return final.store, metrics

    def _step(self, unit: UnitGM, metrics: RunMetrics) -> list[UnitGM]:
        flags = {k: not v for k, v in unit.store.items()}
        action = self.transition(unit.state, unit.tape, flags)
        if isinstance(action, Halt):
            return [UnitGM(HALT_STATE, action.tape, unit.store)]
        if isinstance(action, Continue):
            return [UnitGM(action.state, action.tape, unit.store)]
        if isinstance(action, Load):
            tuples = unit.store.get(action.relation, frozenset())
            spawned = [
                UnitGM(action.state, unit.tape + (t,), dict(unit.store))
                for t in sorted(tuples, key=repr)
            ]
            metrics.spawns += max(0, len(spawned) - 1)
            return spawned
        if isinstance(action, StoreTuple):
            store = dict(unit.store)
            store[action.relation] = store.get(
                action.relation, frozenset()) | {tuple(action.value)}
            return [UnitGM(action.state, action.tape, store)]
        if isinstance(action, ClearRelation):
            store = dict(unit.store)
            store[action.relation] = frozenset()
            return [UnitGM(action.state, action.tape, store)]
        raise MachineError(f"unknown action {action!r}")

    @staticmethod
    def _collapse(units: list[UnitGM], metrics: RunMetrics) -> list[UnitGM]:
        grouped: dict[tuple, UnitGM] = {}
        for unit in units:
            key = unit.key()
            if key in grouped:
                metrics.collapses += 1
                merged = grouped[key].store
                for name, tuples in unit.store.items():
                    merged[name] = merged.get(name, frozenset()) | tuples
            else:
                grouped[key] = UnitGM(unit.state, unit.tape,
                                      dict(unit.store))
        return list(grouped.values())


def loading_protocol(relation: str, output: str = "OUT") -> GenericMachine:
    """The Theorem 5.1 loading protocol as a GM program.

    Loads ``relation`` tuple by tuple: units that draw a duplicate erase
    their tapes and halt (they all collapse into the final unit); after
    each successful draw, a probe round loads once more, records any
    genuinely new tuple in the scratch relation ``NEW``, erases the
    probe, and collapses; if the collapsed ``NEW`` is empty the tape
    holds all of ``relation`` (in this unit's order) and loading stops.
    The surviving units then copy their tapes into ``output`` and halt —
    whereupon everything collapses to a single unit whose store maps
    ``output`` to the full relation.
    """

    def transition(state: str, tape: Tape, empty: Mapping[str, bool]) -> Action:
        if state == "start":
            return Continue("load", tape)
        if state == "load":
            return Load(relation, "check")
        if state == "check":
            if tape[-1] in tape[:-1]:
                return Halt(())  # duplicate draw: die into the collapse pool
            return Load(relation, "probe")
        if state == "probe":
            if tape[-1] in tape[:-1]:
                return Continue("merge", tape[:-1])
            return StoreTuple("NEW", tape[-1], "merge", tape[:-1])
        if state == "merge":
            if empty.get("NEW", True):
                return Continue("emit", tape)
            return ClearRelation("NEW", "load", tape)
        if state == "emit":
            if not tape:
                return Halt(())
            return StoreTuple(output, tape[-1], "emit", tape[:-1])
        raise MachineError(f"unknown state {state!r}")

    return GenericMachine(transition, name=f"load({relation})")
