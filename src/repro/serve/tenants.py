"""Tenants: per-client budgets, quotas, and admission control.

Every request to the serving tier runs on behalf of a *tenant*.  A
:class:`Tenant` holds two layers of resource governance:

* **per-request budgets** — each admitted request forks the tenant's
  :class:`~repro.trace.Budget` template (fresh step/oracle counters,
  shared cancellation flag, a fresh relative deadline when
  ``deadline_s`` is set).  Exhausting any dimension *inside* the
  evaluation surfaces as the three-valued contract's ``UNKNOWN``
  verdict in a 200 response — the answer "don't know yet", not an
  error;
* **admission control** — ``max_concurrent`` (in-flight requests),
  ``max_requests`` (lifetime request count), and ``quota_steps``
  (cumulative interpreter steps across all finished requests) gate
  whether a request is accepted at all.  An over-quota request is
  refused up front with :class:`QuotaExceeded`, which the HTTP layer
  renders as **429** plus a machine-readable body
  (``{"error": "over_quota", "dimension": ..., ...}``).  One tenant
  hitting its quota never affects another: all accounting is
  per-tenant, and the engine cache they share is read-compatible by
  fingerprint soundness.

Admission and settlement are atomic under one per-tenant lock, so the
counters stay exact when the asyncio loop admits while worker threads
settle (the same check-then-commit discipline as
:meth:`repro.trace.Budget.charge`).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from ..trace import Budget, limits
from .config import ServeConfig, TenantSpec


class QuotaExceeded(Exception):
    """An admission-control refusal (HTTP 429).

    ``dimension`` is machine-readable: ``concurrent`` / ``requests`` /
    ``steps``.  ``retryable`` distinguishes transient refusals (the
    in-flight cap — retry once a slot frees) from exhausted lifetime
    quotas.
    """

    def __init__(self, tenant: str, dimension: str, detail: str,
                 retryable: bool):
        super().__init__(detail)
        self.tenant = tenant
        self.dimension = dimension
        self.detail = detail
        self.retryable = retryable

    def to_dict(self) -> dict:
        """The structured 429 response body."""
        return {"error": "over_quota", "tenant": self.tenant,
                "dimension": self.dimension, "detail": self.detail,
                "retryable": self.retryable}


class UnknownTenant(Exception):
    """A request named a tenant the config does not declare (HTTP 403)."""


class Tenant:
    """One tenant's live state: budget template plus quota counters.

    Parameters
    ----------
    name:
        The tenant name (requests route by it).
    max_steps:
        Per-request step allowance (default
        :data:`repro.trace.limits.SERVE_REQUEST`).
    max_oracle_calls / deadline_s:
        Optional per-request oracle-question allowance and wall-clock
        deadline in seconds.
    max_concurrent / max_requests / quota_steps:
        Admission quotas (``None`` = unlimited): in-flight cap,
        lifetime request cap, cumulative step quota.
    """

    def __init__(self, name: str, *,
                 max_steps: int = limits.SERVE_REQUEST,
                 max_oracle_calls: int | None = None,
                 deadline_s: float | None = None,
                 max_concurrent: int | None = None,
                 max_requests: int | None = None,
                 quota_steps: int | None = None):
        self.name = name
        self.deadline_s = deadline_s
        self.max_concurrent = max_concurrent
        self.max_requests = max_requests
        self.quota_steps = quota_steps
        #: The per-request budget template; every admitted request
        #: forks it, so ``cancel_all`` (server shutdown) interrupts
        #: every in-flight request of this tenant at its next charge.
        self.budget_template = Budget(
            max_steps=max_steps, max_oracle_calls=max_oracle_calls)
        self._lock = threading.Lock()
        self.in_flight = 0
        self.admitted = 0
        self.rejected = 0
        self.steps_used = 0
        self.oracle_calls_used = 0
        self.verdicts: dict[str, int] = {}

    @classmethod
    def from_spec(cls, spec: TenantSpec) -> "Tenant":
        """Build the live tenant from its validated config entry."""
        return cls(spec.name,
                   max_steps=spec.max_steps,
                   max_oracle_calls=spec.max_oracle_calls,
                   deadline_s=spec.deadline_s,
                   max_concurrent=spec.max_concurrent,
                   max_requests=spec.max_requests,
                   quota_steps=spec.quota_steps)

    @property
    def max_steps(self) -> int | None:
        """The per-request step allowance (the registry's knob)."""
        return self.budget_template.max_steps

    # -- admission -----------------------------------------------------------

    def admit(self, cost: int = 1) -> Budget:
        """Admit one request of ``cost`` budget forks (batch = member
        count), returning the request :class:`~repro.trace.Budget`.

        Check-then-commit under the tenant lock: a refusal raises
        :class:`QuotaExceeded` *without* consuming any quota.  The
        caller must pair every successful ``admit`` with exactly one
        :meth:`settle` (use :meth:`admission` for the context-managed
        form).
        """
        with self._lock:
            if (self.max_concurrent is not None
                    and self.in_flight >= self.max_concurrent):
                self.rejected += 1
                raise QuotaExceeded(
                    self.name, "concurrent",
                    f"{self.in_flight} requests in flight >= cap "
                    f"{self.max_concurrent}", retryable=True)
            if (self.max_requests is not None
                    and self.admitted + cost > self.max_requests):
                self.rejected += 1
                raise QuotaExceeded(
                    self.name, "requests",
                    f"request quota of {self.max_requests} exhausted "
                    f"({self.admitted} used, {cost} asked)",
                    retryable=False)
            if (self.quota_steps is not None
                    and self.steps_used >= self.quota_steps):
                self.rejected += 1
                raise QuotaExceeded(
                    self.name, "steps",
                    f"step quota of {self.quota_steps} exhausted "
                    f"({self.steps_used} used)", retryable=False)
            self.in_flight += 1
            self.admitted += cost
        return self.budget_template.fork(deadline=self.deadline_s)

    def settle(self, *budgets: Budget, verdicts=()) -> None:
        """Account one finished request: charge the consumed steps and
        oracle questions against the lifetime quotas and count its
        verdict statuses."""
        with self._lock:
            self.in_flight -= 1
            for budget in budgets:
                self.steps_used += budget.steps
                self.oracle_calls_used += budget.oracle_calls
            for status in verdicts:
                self.verdicts[status] = self.verdicts.get(status, 0) + 1

    @contextmanager
    def admission(self, cost: int = 1):
        """``with tenant.admission() as budget:`` — admit + auto-settle.

        Only the *request* budget is settled; callers that fork
        per-member budgets (batches) should use :meth:`admit` /
        :meth:`settle` directly to account every member.
        """
        budget = self.admit(cost)
        verdicts: list[str] = []
        try:
            yield budget, verdicts
        finally:
            self.settle(budget, verdicts=verdicts)

    def cancel_all(self) -> None:
        """Cancel every in-flight (and future) request of this tenant."""
        self.budget_template.cancel()

    # -- observability -------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-safe view of quotas and usage (``GET /stats``)."""
        with self._lock:
            return {
                "quotas": {
                    "max_steps": self.budget_template.max_steps,
                    "max_oracle_calls":
                        self.budget_template.max_oracle_calls,
                    "deadline_s": self.deadline_s,
                    "max_concurrent": self.max_concurrent,
                    "max_requests": self.max_requests,
                    "quota_steps": self.quota_steps,
                },
                "in_flight": self.in_flight,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "steps_used": self.steps_used,
                "oracle_calls_used": self.oracle_calls_used,
                "verdicts": dict(self.verdicts),
            }


class TenantRegistry:
    """The live tenants of one server, keyed by name."""

    def __init__(self, config: ServeConfig):
        self._tenants = {spec.name: Tenant.from_spec(spec)
                         for spec in config.tenants}
        self.default_name = config.default_tenant

    def get(self, name: str | None) -> Tenant:
        """The named tenant (default when ``name`` is ``None``);
        :class:`UnknownTenant` when undeclared."""
        key = self.default_name if name is None else name
        tenant = self._tenants.get(key)
        if tenant is None:
            raise UnknownTenant(
                f"no tenant {key!r}; declared: {sorted(self._tenants)}")
        return tenant

    def names(self) -> list[str]:
        """All declared tenant names, sorted."""
        return sorted(self._tenants)

    def cancel_all(self) -> None:
        """Cancel every tenant's in-flight work (server shutdown)."""
        for tenant in self._tenants.values():
            tenant.cancel_all()

    def snapshot(self) -> dict:
        """Per-tenant usage snapshots (``GET /stats``'s ``tenants``)."""
        return {name: tenant.snapshot()
                for name, tenant in sorted(self._tenants.items())}
