"""The asyncio serving tier: the engine behind HTTP endpoints.

:class:`ServeApp` wires the pieces together — a
:class:`~repro.serve.catalog.Catalog` of lazily built databases behind
one shared :class:`~repro.engine.cache.EngineCache`, a
:class:`~repro.serve.tenants.TenantRegistry` enforcing quotas, a
:class:`~repro.trace.TraceRecorder` ring buffer, and a thread pool the
(CPU-bound, thread-safe) engine evaluations actually run on so the
event loop stays responsive.

Endpoints (full request/response schema in ``docs/serving.md``)::

    POST /eval         one query -> one JSON verdict
    POST /eval_batch   many queries -> streamed NDJSON verdicts,
                       one line per member, as members complete
    GET  /stats        per-tenant + per-database + global snapshots
    GET  /trace?n=K    tail of the trace ring buffer, JSONL
    GET  /catalog      databases, frontends, tenants
    GET  /healthz      liveness probe

Failure discipline: *inside* an evaluation the three-valued contract
holds — a tripped budget is a 200 response whose verdict is ``UNKNOWN``
with a machine-readable reason.  *Admission* failures are HTTP errors:
429 + structured body for quota refusals, 400 for uncompilable
requests, 403 for undeclared tenants.  One tenant's refusals never
block another tenant's requests.

Tracing across the event loop: request handling opens its
``serve.request`` span on the *worker thread* that evaluates (the span
stack is thread-local, and coroutines must not hold spans open across
``await``), so engine spans nest under it naturally; admission
metadata is attached to the same span before evaluation begins.
"""

from __future__ import annotations

import asyncio
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from ..engine import EngineCache
from ..engine.verdict import Verdict
from ..errors import RepresentationError
from ..trace import TraceRecorder, span
from ..trace.spans import active_recorder, install
from .catalog import FRONTENDS, Catalog, QueryError
from .config import ServeConfig, default_config
from .protocol import (
    ProtocolError,
    Request,
    error_response,
    json_response,
    ndjson_line,
    read_request,
    response_bytes,
    stream_head,
)
from .tenants import QuotaExceeded, TenantRegistry, UnknownTenant

#: Sentinel closing a streaming response's queue.
_DONE = object()


def verdict_payload(verdict: Verdict) -> dict:
    """The wire form of one three-valued verdict."""
    return {"status": verdict.status, "reason": verdict.reason,
            "steps": verdict.steps}


class ServeApp:
    """The HTTP application: routing, admission, evaluation, stats.

    Parameters
    ----------
    config:
        A validated :class:`~repro.serve.config.ServeConfig` (the
        batteries-included :func:`~repro.serve.config.default_config`
        when omitted).
    cache:
        An :class:`~repro.engine.cache.EngineCache` to share with the
        catalog (fresh when omitted) — the hook the persistence layer
        uses to restart warm.
    store:
        Path of a durable :class:`repro.store.Store` sqlite file
        (overrides ``config.store`` when given).  When either is set,
        persisted results load into the shared cache at construction,
        every request probes the store's replayable verdicts under the
        budget-class rule, and new verdicts write through.
    """

    def __init__(self, config: ServeConfig | None = None, *,
                 cache: EngineCache | None = None,
                 store: str | None = None):
        self.config = config if config is not None else default_config()
        self.config.validate()
        self.catalog = Catalog(self.config, cache=cache)
        self.tenants = TenantRegistry(self.config)
        self.recorder = TraceRecorder(capacity=self.config.trace_capacity)
        self.pool = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-serve")
        # [server] workers > 1 also turns on the process-pool sharded
        # batch path (docs/sharding.md): /eval_batch misses fan out
        # across worker processes instead of running the GIL-bound
        # loop on one serve thread.
        self.shards = None
        if self.config.workers > 1:
            from ..engine.shard import ShardExecutor
            self.shards = ShardExecutor(self.config.workers)
        self.started_at = time.monotonic()
        self.requests_seen = 0
        self._counter_lock = threading.Lock()
        self._previous_recorder = None
        self._started = False
        self.store = None
        self.store_loaded = {"loaded": 0, "skipped": 0}
        self._store_hits = 0
        self._store_writes = 0
        store_path = store if store is not None else self.config.store
        if store_path:
            from ..store import Store
            self.store = Store(store_path)
            self.store_loaded = self.store.load_results(self.catalog.cache)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Install the trace recorder (idempotent)."""
        if not self._started:
            self._previous_recorder = active_recorder()
            install(self.recorder)
            self._started = True

    def close(self) -> None:
        """Cancel in-flight work, stop the pool, restore the recorder,
        and snapshot the result cache into the store (when attached)."""
        if self._started:
            install(self._previous_recorder)
            self._started = False
        self.tenants.cancel_all()
        self.pool.shutdown(wait=False, cancel_futures=True)
        if self.shards is not None:
            self.shards.close()
        if self.store is not None:
            self.store.snapshot_cache(self.catalog.cache)
            self.store.close()
            self.store = None

    def _count_request(self) -> int:
        """Bump and return the served-request counter (thread-safe)."""
        with self._counter_lock:
            self.requests_seen += 1
            return self.requests_seen

    # -- the connection handler ---------------------------------------------

    async def handle(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        """One connection: read a request, route it, close."""
        try:
            try:
                request = await read_request(reader)
                if request is None:
                    return
                self._count_request()
                await self._dispatch(request, writer)
            except ProtocolError as exc:
                writer.write(error_response(exc.status, "protocol",
                                            exc.detail))
            except QuotaExceeded as exc:
                writer.write(json_response(429, exc.to_dict()))
            except UnknownTenant as exc:
                writer.write(error_response(403, "unknown_tenant",
                                            str(exc)))
            except QueryError as exc:
                status = 404 if exc.code == "unknown_database" else 400
                writer.write(error_response(status, exc.code, exc.detail))
            except (ConnectionError, asyncio.CancelledError):
                raise
            except Exception as exc:  # noqa: BLE001 - the 500 boundary
                print(f"repro.serve: internal error: {exc!r}",
                      file=sys.stderr)
                writer.write(error_response(
                    500, "internal", f"{type(exc).__name__}: {exc}"))
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, request: Request,
                        writer: asyncio.StreamWriter) -> None:
        """Route one parsed request to its endpoint."""
        route = (request.method, request.path)
        if route == ("POST", "/eval"):
            writer.write(await self._eval(request))
        elif route == ("POST", "/eval_batch"):
            await self._eval_batch(request, writer)
        elif route == ("GET", "/stats"):
            writer.write(json_response(200, self.stats()))
        elif route == ("GET", "/trace"):
            writer.write(self._trace_tail(request))
        elif route == ("GET", "/catalog"):
            writer.write(json_response(200, self.catalog_payload()))
        elif route == ("GET", "/healthz"):
            writer.write(json_response(200, {
                "ok": True,
                "uptime_s": time.monotonic() - self.started_at}))
        elif request.path in ("/eval", "/eval_batch", "/stats", "/trace",
                              "/catalog", "/healthz"):
            raise ProtocolError(
                405, f"{request.method} not supported on {request.path}")
        else:
            raise ProtocolError(404, f"no endpoint {request.path!r}")

    # -- the durable store (docs/persistence.md) -----------------------------

    def _store_replay(self, engine, plan, budget) -> Verdict | None:
        """A persisted verdict for this request, or ``None``.

        Completed values answer any budget; UNKNOWN(out_of_fuel) rows
        answer only requests whose step budget is at most the class
        they were computed under — the budget-compatibility audit lives
        in :meth:`repro.store.backend.Store.lookup_verdict`.
        """
        if self.store is None:
            return None
        prepared = engine.prepare(plan)
        verdict = self.store.lookup_verdict(
            engine.fingerprint, prepared, budget.max_steps)
        if verdict is not None:
            with self._counter_lock:
                self._store_hits += 1
        return verdict

    def _store_write(self, engine, plan, verdict: Verdict,
                     budget) -> None:
        """Write one freshly computed verdict through to the store."""
        if self.store is None:
            return
        prepared = engine.prepare(plan)
        if self.store.put_verdict(engine.fingerprint, prepared, verdict,
                                  budget.max_steps):
            with self._counter_lock:
                self._store_writes += 1

    # -- request parsing -----------------------------------------------------

    def _eval_fields(self, request: Request, *,
                     batch: bool) -> tuple:
        """Validate the shared ``/eval``/``/eval_batch`` body fields."""
        payload = request.json()
        database = payload.get("database")
        if not isinstance(database, str) or not database:
            raise ProtocolError(400, "missing string field 'database'")
        frontend = payload.get("frontend", "fo")
        if frontend not in FRONTENDS:
            raise QueryError(
                "unknown_frontend",
                f"no frontend {frontend!r}; choose from {FRONTENDS}")
        tenant_name = payload.get("tenant")
        if tenant_name is not None and not isinstance(tenant_name, str):
            raise ProtocolError(400, "'tenant' must be a string")
        tenant = self.tenants.get(tenant_name)
        if batch:
            queries = payload.get("queries")
            if (not isinstance(queries, list)
                    or any(not isinstance(x, str) for x in queries)):
                raise ProtocolError(
                    400, "missing list-of-strings field 'queries'")
            return database, frontend, tenant, queries
        query = payload.get("query")
        if not isinstance(query, str) or not query:
            raise ProtocolError(400, "missing string field 'query'")
        return database, frontend, tenant, query

    # -- POST /eval ----------------------------------------------------------

    async def _eval(self, request: Request) -> bytes:
        """One query, one JSON verdict (or a raised admission error)."""
        database, frontend, tenant, query = self._eval_fields(
            request, batch=False)
        budget = tenant.admit()
        loop = asyncio.get_running_loop()

        def work() -> tuple[Verdict, float]:
            t0 = time.perf_counter()
            with span("serve.request", endpoint="/eval",
                      tenant=tenant.name, database=database,
                      frontend=frontend) as sp:
                engine, plan = self.catalog.compile(database, frontend,
                                                    query)
                verdict = self._store_replay(engine, plan, budget)
                if verdict is not None:
                    sp.set(verdict=verdict.status, store="hit")
                else:
                    verdict = engine.eval(plan, budget=budget)
                    self._store_write(engine, plan, verdict, budget)
                    sp.set(verdict=verdict.status)
                sp.count("steps", budget.steps)
            return verdict, time.perf_counter() - t0

        statuses: list[str] = []
        try:
            verdict, wall = await loop.run_in_executor(self.pool, work)
            statuses.append(verdict.status)
        finally:
            tenant.settle(budget, verdicts=statuses)
        body = verdict_payload(verdict)
        body.update(database=database, frontend=frontend,
                    tenant=tenant.name, wall_us=int(wall * 1e6))
        return json_response(200, body)

    # -- POST /eval_batch ----------------------------------------------------

    async def _eval_batch(self, request: Request,
                          writer: asyncio.StreamWriter) -> None:
        """Many queries, streamed NDJSON — one line as each member
        completes, ending with a summary line.

        Admission charges the whole batch up front (``cost`` = member
        count against ``max_requests``); each member then runs under
        its own fork of the request budget — the engine's
        ``eval_batch`` discipline, so one diverging member goes
        ``UNKNOWN`` while the rest still answer.  A member that fails
        to *compile* yields an error line for its index and the batch
        continues.

        With ``[server] workers > 1`` the batch is process-sharded
        (:meth:`_batch_sharded`): lines still arrive in request order,
        but only after the shards join, and each member's consumed
        fuel is absorbed back into its tenant fork so quota accounting
        is identical to the sequential path.
        """
        database, frontend, tenant, queries = self._eval_fields(
            request, batch=True)
        budget = tenant.admit(cost=len(queries))
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue()

        def emit(item) -> None:
            loop.call_soon_threadsafe(queue.put_nowait, item)

        sharded = self.shards is not None and len(queries) > 1

        def work() -> None:
            members: list = []
            statuses: list[str] = []
            try:
                with span("serve.request", endpoint="/eval_batch",
                          tenant=tenant.name, database=database,
                          frontend=frontend, size=len(queries)) as sp:
                    run = (self._batch_sharded if sharded
                           else self._batch_sequential)
                    run(database, frontend, queries, budget,
                        members, statuses, emit)
                    sp.count("steps", sum(m.steps for m in members))
            finally:
                tenant.settle(budget, *members, verdicts=statuses)
                emit({"done": True, "members": len(queries),
                      "tenant": tenant.name})
                emit(_DONE)

        writer.write(stream_head())
        await writer.drain()
        future = loop.run_in_executor(self.pool, work)
        while True:
            item = await queue.get()
            if item is _DONE:
                break
            writer.write(ndjson_line(item))
            await writer.drain()
        await future

    def _batch_sequential(self, database: str, frontend: str,
                          queries: list, budget, members: list,
                          statuses: list, emit) -> None:
        """The in-process batch loop: one member at a time, each line
        emitted as its member completes."""
        for index, text in enumerate(queries):
            line = {"index": index}
            member = budget.fork()
            members.append(member)
            t0 = time.perf_counter()
            try:
                engine, plan = self.catalog.compile(database, frontend,
                                                    text)
                verdict = self._store_replay(engine, plan, member)
                if verdict is None:
                    verdict = engine.eval(plan, budget=member)
                    self._store_write(engine, plan, verdict, member)
            except QueryError as exc:
                line.update(error=exc.code, detail=exc.detail)
            else:
                statuses.append(verdict.status)
                line.update(verdict_payload(verdict))
            line["wall_us"] = int((time.perf_counter() - t0) * 1e6)
            emit(line)

    def _batch_sharded(self, database: str, frontend: str,
                       queries: list, budget, members: list,
                       statuses: list, emit) -> None:
        """The process-pool batch path behind ``[server] workers``.

        Compilation and store replay stay on the coordinator (the
        compile memo and the durable store are coordinator state); the
        misses ship to the :class:`~repro.engine.shard.ShardExecutor`
        as **one** eval batch, with each member's tenant fork passed as
        its ``member_budgets`` slot so the worker-side counters land
        on exactly the budget ``tenant.settle`` will read.  Fresh
        verdicts write through to the store at the join, and every
        line is emitted in request order afterwards.  Any pool-side
        operational failure degrades to in-process evaluation — a
        broken pool must never turn into a client-visible error the
        sequential path would not have produced.
        """
        lines: list[dict] = []
        pending: list[int] = []
        plans: list = []
        engine = None
        for index, text in enumerate(queries):
            line = {"index": index}
            member = budget.fork()
            members.append(member)
            t0 = time.perf_counter()
            verdict = None
            try:
                engine, plan = self.catalog.compile(database, frontend,
                                                    text)
                verdict = self._store_replay(engine, plan, member)
            except QueryError as exc:
                line.update(error=exc.code, detail=exc.detail)
            else:
                if verdict is not None:
                    statuses.append(verdict.status)
                    line.update(verdict_payload(verdict))
                else:
                    pending.append(index)
                    plans.append(plan)
            line["wall_us"] = int((time.perf_counter() - t0) * 1e6)
            lines.append(line)
        if pending:
            spec = {"name": database,
                    "entry": self.catalog.spec(database).to_dict()}
            t0 = time.perf_counter()
            try:
                verdicts = self.shards.eval_batch(
                    engine, plans, spec=spec, budget=budget,
                    member_budgets=[members[i] for i in pending])
            except RepresentationError:
                raise  # exception parity with the sequential path
            except Exception:  # noqa: BLE001 - degrade, don't 500
                verdicts = [engine.eval(plans[k], budget=members[i])
                            for k, i in enumerate(pending)]
            wall = int((time.perf_counter() - t0) * 1e6)
            for k, index in enumerate(pending):
                verdict = verdicts[k]
                self._store_write(engine, plans[k], verdict,
                                  members[index])
                statuses.append(verdict.status)
                lines[index].update(verdict_payload(verdict))
                lines[index]["wall_us"] += wall
        for line in lines:
            emit(line)

    # -- observability endpoints --------------------------------------------

    def stats(self) -> dict:
        """The ``GET /stats`` payload: global + per-database +
        per-tenant snapshots, all JSON-safe."""
        catalog = self.catalog.stats()
        totals = {"evaluations": 0, "batch_requests": 0,
                  "oracle_questions": 0, "wall_time": 0.0,
                  "verdicts": {"true": 0, "false": 0, "unknown": 0}}
        for views in catalog["databases"].values():
            for snapshot in views.values():
                totals["evaluations"] += snapshot["evaluations"]
                totals["batch_requests"] += snapshot["batch_requests"]
                totals["oracle_questions"] += snapshot["oracle_questions"]
                totals["wall_time"] += snapshot["wall_time"]
                for status, n in snapshot["verdicts"].items():
                    totals["verdicts"][status] += n
        payload = {
            "server": {
                "uptime_s": time.monotonic() - self.started_at,
                "requests": self.requests_seen,
                "workers": self.config.workers,
                "shard_workers": (self.shards.workers
                                  if self.shards is not None else 1),
                "built": self.catalog.built(),
            },
            "global": {**totals, "shared_cache": catalog["shared_cache"]},
            "databases": catalog["databases"],
            "tenants": self.tenants.snapshot(),
        }
        if self.store is not None:
            with self._counter_lock:
                hits, writes = self._store_hits, self._store_writes
            payload["store"] = {
                "path": self.store.path,
                "loaded": dict(self.store_loaded),
                "replay_hits": hits,
                "write_throughs": writes,
                "counts": self.store.counts(),
            }
        return payload

    def catalog_payload(self) -> dict:
        """The ``GET /catalog`` payload."""
        return {
            "databases": {spec.name: {"kind": spec.kind}
                          for spec in self.config.databases},
            "frontends": list(FRONTENDS),
            "tenants": self.tenants.names(),
            "default_tenant": self.tenants.default_name,
        }

    def _trace_tail(self, request: Request) -> bytes:
        """The ``GET /trace?n=K`` response: last K JSONL span records."""
        try:
            n = int(request.query.get("n", "200"))
        except ValueError as exc:
            raise ProtocolError(400, "'n' must be an integer") from exc
        lines = self.recorder.trace().to_jsonl().splitlines()
        tail = "\n".join(lines[-n:] if n > 0 else [])
        return response_bytes(200, (tail + "\n").encode("utf-8")
                              if tail else b"",
                              content_type="application/x-ndjson")


class ServerHandle:
    """A running server: background thread + event loop + socket.

    Built by :func:`start_in_thread`; used by tests, the E19 load
    generator, and the CI smoke job.  ``base_url`` is ready as soon as
    the constructor returns; :meth:`stop` shuts down idempotently.
    """

    def __init__(self, app: ServeApp, host: str, port: int):
        self.app = app
        self.host = host
        self.port = 0
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._failure: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, args=(host, port),
            name="repro-serve-loop", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server failed to start within 30s")
        if self._failure is not None:
            raise RuntimeError(
                f"server failed to start: {self._failure!r}")

    @property
    def base_url(self) -> str:
        """The root URL clients should talk to."""
        return f"http://{self.host}:{self.port}"

    def _run(self, host: str, port: int) -> None:
        try:
            asyncio.run(self._main(host, port))
        except BaseException as exc:  # noqa: BLE001 - surfaced to starter
            self._failure = exc
            self._ready.set()

    async def _main(self, host: str, port: int) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.app.start()
        server = await asyncio.start_server(self.app.handle, host, port)
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        try:
            async with server:
                await self._stop.wait()
        finally:
            self.app.close()

    def stop(self) -> None:
        """Shut the server down and join its thread (idempotent)."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None and loop.is_running():
            loop.call_soon_threadsafe(stop.set)
        self._thread.join(timeout=30)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def start_in_thread(config: ServeConfig | None = None, *,
                    host: str = "127.0.0.1", port: int = 0,
                    cache: EngineCache | None = None,
                    store: str | None = None) -> ServerHandle:
    """Start a server on a background thread (``port=0`` = ephemeral).

    The in-process entry point tests and the E19/E21 benches use::

        with start_in_thread(port=0) as server:
            client = ServeClient(server.base_url)
            client.eval("rado", "exists x. R1(x, x)")

    ``store`` attaches a durable :class:`repro.store.Store` (warm
    restart + write-through), overriding ``config.store``.
    """
    app = ServeApp(config, cache=cache, store=store)
    return ServerHandle(app, host, port)


def serve_forever(config: ServeConfig | None = None, *,
                  host: str | None = None,
                  port: int | None = None,
                  store: str | None = None) -> int:
    """Run the server on the calling thread until interrupted (the
    ``python -m repro serve`` path).  Returns the process exit code."""
    app = ServeApp(config, store=store)
    host = host if host is not None else app.config.host
    port = port if port is not None else app.config.port

    async def main() -> None:
        app.start()
        server = await asyncio.start_server(app.handle, host, port)
        bound = server.sockets[0].getsockname()
        print(f"repro serve: listening on http://{bound[0]}:{bound[1]} "
              f"({len(app.config.databases)} databases, "
              f"{len(app.config.tenants)} tenants)", flush=True)
        if app.store is not None:
            print(f"repro serve: store {app.store.path} "
                  f"(loaded {app.store_loaded['loaded']} warm results)",
                  flush=True)
        try:
            async with server:
                await server.serve_forever()
        finally:
            app.close()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("repro serve: shutting down")
    return 0
