"""The database catalog: lazy construction, one shared engine cache.

A :class:`Catalog` turns the declarative :class:`~repro.serve.config.
ServeConfig` database entries into live :class:`~repro.engine.Engine`
objects on first use, and never builds the same view twice.  All
engines share **one** :class:`~repro.engine.cache.EngineCache`: result
entries are keyed by database *fingerprint* (genericity, Definition
2.4, is the soundness argument), so two tenants asking the same
question of the same database — or of two fingerprint-equal databases —
share the warm answer regardless of which engine object answered first.

The catalog also owns query compilation: request text is parsed and
lowered through :func:`repro.engine.frontends.lower_all` once per
``(database, frontend, text)`` triple and memoized, so a warm request
costs two cache probes (compile memo + result cache) before the
response is written.

Thread safety: construction and the compile memo run under locks
(the server evaluates on a thread pool); live engines are themselves
thread-safe per ``docs/concurrency.md``.
"""

from __future__ import annotations

import threading

from ..engine import Engine, EngineCache, lower_all
from ..engine.frontends import FCF_ROUTES
from ..errors import ParseError, RankMismatchError, TypeSignatureError
from ..fcf.database import FcfDatabase
from ..fcf.relation import cofinite_value, finite_value
from ..logic import parse as parse_formula
from ..qlhs.parser import parse_program, parse_term
from ..util.memo import lru_cached
from .config import DatabaseSpec, ServeConfig

#: The frontend names ``POST /eval`` accepts, in docs order.
FRONTENDS = ("fo", "qlhs", "gmhs", "qlf")


class QueryError(TypeSignatureError):
    """A request that cannot be compiled (bad frontend, parse error,
    frontend unavailable for the target database).  Carries a
    machine-readable ``code`` for the HTTP error body."""

    def __init__(self, code: str, detail: str):
        super().__init__(detail)
        self.code = code
        self.detail = detail


def _build_database(spec: DatabaseSpec):
    """Construct the hs (and, for fcf entries, fcf) view of one spec.

    Returns ``(hsdb, fcf_db_or_None)``.
    """
    if spec.kind == "builtin":
        from ..graphs import mixed_components_hsdb, triangles_hsdb
        from ..symmetric import infinite_clique, rado_hsdb
        builders = {
            "clique": infinite_clique,
            "rado": rado_hsdb,
            "triangles": triangles_hsdb,
            "k3k2": mixed_components_hsdb,
        }
        return builders[spec.source](), None
    if spec.kind == "finite":
        from ..core import finite_database
        from ..symmetric.constructions import from_finite_database
        parts = [(rank, [tuple(t) for t in tuples])
                 for rank, tuples, __ in spec.relations]
        finite = finite_database(parts, list(range(spec.domain)),
                                 name=spec.name)
        return from_finite_database(finite, name=spec.name), None
    # kind == "fcf": the native fcf view plus the Proposition 4.1
    # hs view, so every frontend route can serve the same database.
    values = [cofinite_value(rank, [tuple(t) for t in tuples]) if cofinite
              else finite_value(rank, [tuple(t) for t in tuples])
              for rank, tuples, cofinite in spec.relations]
    fcf_db = FcfDatabase(values, name=spec.name)
    return fcf_db.to_hsdb(), fcf_db


class Catalog:
    """Named databases behind one shared :class:`EngineCache`.

    Parameters
    ----------
    config:
        The validated :class:`ServeConfig` whose ``databases`` table
        this catalog serves.
    cache:
        An :class:`EngineCache` to share; a fresh one is created when
        omitted.  Passing a pre-warmed cache is how a restarting server
        would resume warm (ROADMAP item 2).
    """

    def __init__(self, config: ServeConfig,
                 cache: EngineCache | None = None):
        self.config = config
        self.cache = cache if cache is not None else EngineCache()
        self._lock = threading.Lock()
        self._engines: dict[tuple[str, str], Engine] = {}
        self._compile = lru_cached(maxsize=4096)(self._compile_uncached)

    # -- databases and engines ----------------------------------------------

    def names(self) -> list[str]:
        """The configured database names, in config order."""
        return [spec.name for spec in self.config.databases]

    def spec(self, name: str) -> DatabaseSpec:
        """The named spec; :class:`QueryError` (``unknown_database``)
        when the catalog has no such entry."""
        try:
            return self.config.database(name)
        except KeyError:
            raise QueryError(
                "unknown_database",
                f"no database {name!r}; choose from {self.names()}"
            ) from None

    def engine(self, name: str, view: str = "hs") -> Engine:
        """The (lazily built, memoized) engine over one view.

        ``view`` is ``"hs"`` (every database has one) or ``"fcf"``
        (only ``kind: fcf`` entries; :class:`QueryError` otherwise).
        Both views of one database share the catalog-wide cache, and a
        second request for the same view returns the same engine.
        Engines inherit the service-wide execution configuration
        (``server.optimize`` / ``server.compiled`` in the config; both
        default on) — one knob for the whole catalog, so every tenant
        sees the same plans and the shared result cache stays coherent.
        """
        spec = self.spec(name)
        key = (name, view)
        optimize = self.config.optimize
        compiled = self.config.compiled
        with self._lock:
            got = self._engines.get(key)
            if got is not None:
                return got
            hsdb, fcf_db = _build_database(spec)
            self._engines[(name, "hs")] = Engine(
                hsdb, cache=self.cache, optimize=optimize,
                compiled=compiled)
            if fcf_db is not None:
                self._engines[(name, "fcf")] = Engine(
                    fcf_db, cache=self.cache, optimize=optimize,
                    compiled=compiled)
            got = self._engines.get(key)
        if got is None:
            raise QueryError(
                "frontend_unavailable",
                f"database {name!r} (kind {spec.kind!r}) has no fcf "
                "view; the qlf frontend needs a 'kind: fcf' database")
        return got

    def built(self) -> list[str]:
        """Names of databases already constructed (observability)."""
        with self._lock:
            return sorted({name for name, __ in self._engines})

    # -- query compilation ---------------------------------------------------

    def compile(self, name: str, frontend: str, text: str):
        """Compile request text for one database and frontend.

        Returns ``(engine, plan)`` ready for :meth:`Engine.eval
        <repro.engine.executor.Engine.eval>`.  Memoized per
        ``(database, frontend, text)``; raises :class:`QueryError`
        with a machine-readable ``code`` on any failure.
        """
        if frontend not in FRONTENDS:
            raise QueryError(
                "unknown_frontend",
                f"no frontend {frontend!r}; choose from {FRONTENDS}")
        return self._compile(name, frontend, text)

    def _compile_uncached(self, name: str, frontend: str, text: str):
        """The compile body behind the memo."""
        view = "fcf" if frontend in FCF_ROUTES else "hs"
        engine = self.engine(name, view)
        signature = engine.signature
        try:
            if frontend in ("fo", "gmhs"):
                query = parse_formula(text)
                plans = lower_all(query, signature,
                                  include_gmhs=(frontend == "gmhs"))
            else:
                query = self._parse_qlhs(text)
                plans = lower_all(query, signature,
                                  include_qlf=(frontend == "qlf"))
        except ParseError as exc:
            raise QueryError("parse_error", str(exc)) from exc
        except (TypeSignatureError, RankMismatchError) as exc:
            raise QueryError("type_error", str(exc)) from exc
        plan = plans.get(frontend)
        if plan is None:
            raise QueryError(
                "frontend_unavailable",
                f"the {frontend!r} route cannot express this query "
                "(QLf+ excludes the hs intrinsics; programs have no "
                "fo route)")
        return engine, plan

    @staticmethod
    def _parse_qlhs(text: str):
        """Parse QLhs request text: a term if possible, else a program."""
        try:
            return parse_term(text)
        except ParseError:
            return parse_program(text)

    # -- observability -------------------------------------------------------

    def stats(self) -> dict:
        """Per-database engine snapshots plus the shared-cache view.

        The wire format of ``GET /stats``'s ``databases``/``global``
        sections; every leaf is JSON-safe
        (:meth:`~repro.engine.stats.EngineStats.to_dict`).
        """
        with self._lock:
            engines = dict(self._engines)
        databases = {}
        for (name, view), engine in sorted(engines.items()):
            databases.setdefault(name, {})[view] = \
                engine.stats().to_dict()
        return {
            "databases": databases,
            "shared_cache": {
                "plans": self.cache.plans.stats().to_dict(),
                "results": self.cache.results.stats().to_dict(),
            },
        }
