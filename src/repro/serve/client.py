"""A blocking client for the serving tier (stdlib ``http.client``).

:class:`ServeClient` wraps the HTTP/JSON API so tests, the E19 load
generator, and the CI smoke job never hand-roll requests::

    with start_in_thread(port=0) as server:
        client = ServeClient(server.base_url)
        verdict = client.eval("rado", "exists x. E(x, x)")
        for line in client.eval_batch("rado", ["E(c0, c1)", "E(c0, c0)"]):
            print(line["index"], line.get("status"))

Non-2xx responses raise :class:`ServeError` carrying the parsed error
body, so a 429 surfaces as ``exc.payload["dimension"]`` rather than a
string to grep.  ``eval_batch`` is a generator over the streamed
NDJSON lines — members arrive as the server finishes them, ending
with the ``{"done": true, ...}`` summary line.
"""

from __future__ import annotations

import json
import socket
from http.client import HTTPConnection
from typing import Iterator
from urllib.parse import urlsplit


class ServeError(Exception):
    """A non-2xx response; ``status`` plus the parsed JSON ``payload``."""

    def __init__(self, status: int, payload: dict):
        detail = payload.get("detail", payload.get("error", ""))
        super().__init__(f"HTTP {status}: {detail}")
        self.status = status
        self.payload = payload


class ServeClient:
    """A blocking HTTP client bound to one server ``base_url``.

    Each call opens a fresh connection (the server is
    ``Connection: close``), so one client object is safe to share
    across threads — the E19 bench drives 64 of them concurrently.
    """

    def __init__(self, base_url: str, timeout: float = 60.0):
        parts = urlsplit(base_url)
        if parts.scheme != "http" or not parts.hostname:
            raise ValueError(f"need an http://host:port URL, got "
                             f"{base_url!r}")
        self.host = parts.hostname
        self.port = parts.port if parts.port is not None else 80
        self.timeout = timeout

    def _connect(self) -> HTTPConnection:
        """A fresh connection (one per request: the server closes)."""
        return HTTPConnection(self.host, self.port, timeout=self.timeout)

    def _request(self, method: str, path: str,
                 payload: dict | None = None) -> dict:
        """One non-streaming exchange; parsed JSON body or
        :class:`ServeError`."""
        conn = self._connect()
        try:
            body = (None if payload is None
                    else json.dumps(payload).encode("utf-8"))
            conn.request(method, path, body=body,
                         headers={"Content-Type": "application/json"}
                         if body else {})
            response = conn.getresponse()
            raw = response.read()
        finally:
            conn.close()
        data = json.loads(raw.decode("utf-8")) if raw else {}
        if response.status >= 400:
            raise ServeError(response.status, data)
        return data

    # -- evaluation ----------------------------------------------------------

    def eval(self, database: str, query: str, *, frontend: str = "fo",
             tenant: str | None = None) -> dict:
        """``POST /eval``: one three-valued verdict as a dict
        (``status`` / ``reason`` / ``steps`` / ``wall_us`` ...)."""
        payload = {"database": database, "frontend": frontend,
                   "query": query}
        if tenant is not None:
            payload["tenant"] = tenant
        return self._request("POST", "/eval", payload)

    def eval_batch(self, database: str, queries: list[str], *,
                   frontend: str = "fo",
                   tenant: str | None = None) -> Iterator[dict]:
        """``POST /eval_batch``: yield each streamed NDJSON line as it
        arrives (members in completion order, then the summary line)."""
        payload = {"database": database, "frontend": frontend,
                   "queries": list(queries)}
        if tenant is not None:
            payload["tenant"] = tenant
        conn = self._connect()
        try:
            conn.request("POST", "/eval_batch",
                         body=json.dumps(payload).encode("utf-8"),
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            if response.status >= 400:
                raise ServeError(response.status,
                                 json.loads(response.read() or b"{}"))
            while True:
                try:
                    line = response.fp.readline()
                except (socket.timeout, OSError) as exc:
                    raise ServeError(
                        499, {"error": "stream_interrupted",
                              "detail": str(exc)}) from exc
                if not line:
                    return
                yield json.loads(line)
        finally:
            conn.close()

    # -- observability -------------------------------------------------------

    def stats(self) -> dict:
        """``GET /stats``."""
        return self._request("GET", "/stats")

    def catalog(self) -> dict:
        """``GET /catalog``."""
        return self._request("GET", "/catalog")

    def healthz(self) -> dict:
        """``GET /healthz``."""
        return self._request("GET", "/healthz")

    def trace(self, n: int = 200) -> list[dict]:
        """``GET /trace?n=K``: the last K span records, parsed."""
        conn = self._connect()
        try:
            conn.request("GET", f"/trace?n={n}")
            response = conn.getresponse()
            raw = response.read()
        finally:
            conn.close()
        if response.status >= 400:
            raise ServeError(response.status,
                             json.loads(raw or b"{}"))
        return [json.loads(line) for line in raw.splitlines() if line]
