"""Serving-tier configuration: databases, tenants, server knobs.

A :class:`ServeConfig` is the declarative face of the service — the
"config + constructor" shape of the related ``aics_modeling_db``
catalog layer (PAPERS.md): each named database entry says *how to
build* a database (it is not built until first use, see
:mod:`repro.serve.catalog`), and each tenant entry says *how much* of
the engine a client may consume (:mod:`repro.serve.tenants`).

Configs load from JSON always, and from TOML when the interpreter
ships :mod:`tomllib` (3.11+); the two spell the same schema, which is
documented in ``docs/serving.md`` and exercised by
``tests/test_serve/test_config.py``.

Database kinds
--------------
``builtin``
    One of the library's built-in hs-r-dbs: ``clique``, ``rado``,
    ``triangles``, ``k3k2``.
``finite``
    A finite database embedded into an infinite domain
    (:func:`repro.symmetric.constructions.from_finite_database`):
    ``relations`` is a list of ``{"rank": r, "tuples": [...]}`` and
    ``domain`` the finite domain size.
``fcf``
    A finite/co-finite database (Section 4): ``relations`` is a list
    of ``{"rank": r, "tuples": [...], "cofinite": bool}``.  Fcf
    entries serve the ``qlf`` frontend natively and the hs frontends
    through the Proposition 4.1 bridge.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

try:  # Python 3.11+; JSON remains the floor for older interpreters.
    import tomllib
except ImportError:  # pragma: no cover - exercised only on 3.10
    tomllib = None

from ..errors import TypeSignatureError
from ..trace import limits

#: The builtin database names ``kind: builtin`` accepts (the same
#: catalog the CLI's ``eval``/``engine``/``trace`` commands use).
BUILTIN_DATABASES = ("clique", "rado", "triangles", "k3k2")

#: Database kinds understood by :func:`DatabaseSpec.validate`.
DATABASE_KINDS = ("builtin", "finite", "fcf")


class ConfigError(TypeSignatureError):
    """A malformed serving config (bad kind, missing field, bad type)."""


@dataclass(frozen=True)
class DatabaseSpec:
    """One named database entry: how to construct it, lazily.

    ``relations`` holds ``(rank, tuples, cofinite)`` triples for the
    ``finite``/``fcf`` kinds (``cofinite`` is always ``False`` for
    ``finite``); ``source`` names the builder for ``builtin``.
    """

    name: str
    kind: str
    source: str = ""
    relations: tuple = ()
    domain: int = 0

    def validate(self) -> None:
        """Raise :class:`ConfigError` on any inconsistency."""
        if self.kind not in DATABASE_KINDS:
            raise ConfigError(
                f"database {self.name!r}: unknown kind {self.kind!r}; "
                f"choose from {DATABASE_KINDS}")
        if self.kind == "builtin":
            if self.source not in BUILTIN_DATABASES:
                raise ConfigError(
                    f"database {self.name!r}: unknown builtin "
                    f"{self.source!r}; choose from {BUILTIN_DATABASES}")
            return
        if not self.relations:
            raise ConfigError(
                f"database {self.name!r}: kind {self.kind!r} needs a "
                "non-empty 'relations' list")
        for rank, tuples, cofinite in self.relations:
            if rank < 0:
                raise ConfigError(
                    f"database {self.name!r}: negative rank {rank}")
            for t in tuples:
                if len(t) != rank:
                    raise ConfigError(
                        f"database {self.name!r}: tuple {t!r} does not "
                        f"match rank {rank}")
                if any(not isinstance(x, int) or x < 0 for x in t):
                    raise ConfigError(
                        f"database {self.name!r}: tuple {t!r} must hold "
                        "non-negative integers")
            if cofinite and self.kind == "finite":
                raise ConfigError(
                    f"database {self.name!r}: kind 'finite' cannot "
                    "carry co-finite relations")
        if self.kind == "finite":
            if self.domain < 1:
                raise ConfigError(
                    f"database {self.name!r}: kind 'finite' needs "
                    "'domain' >= 1")
            for rank, tuples, __ in self.relations:
                for t in tuples:
                    if any(x >= self.domain for x in t):
                        raise ConfigError(
                            f"database {self.name!r}: tuple {t!r} "
                            f"outside domain of size {self.domain}")

    def to_dict(self) -> dict:
        """The JSON form of this entry (inverse of :func:`_database_spec`)."""
        if self.kind == "builtin":
            return {"kind": "builtin", "source": self.source}
        out: dict = {"kind": self.kind, "relations": [
            {"rank": rank, "tuples": [list(t) for t in tuples],
             **({"cofinite": True} if cofinite else {})}
            for rank, tuples, cofinite in self.relations]}
        if self.kind == "finite":
            out["domain"] = self.domain
        return out


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's resource quotas.

    Per-request dimensions (``max_steps``, ``max_oracle_calls``,
    ``deadline_s``) bound a single evaluation and surface as ``UNKNOWN``
    verdicts when tripped; admission dimensions (``max_concurrent``,
    ``max_requests``, ``quota_steps``) gate whether a request is
    *accepted at all* and surface as HTTP 429 with a structured reason
    (:mod:`repro.serve.tenants`).  ``None`` means unlimited.
    """

    name: str
    max_steps: int = limits.SERVE_REQUEST
    max_oracle_calls: int | None = None
    deadline_s: float | None = None
    max_concurrent: int | None = None
    max_requests: int | None = None
    quota_steps: int | None = None

    def validate(self) -> None:
        """Raise :class:`ConfigError` on a nonsensical quota."""
        for label, value in (("max_steps", self.max_steps),
                             ("max_oracle_calls", self.max_oracle_calls),
                             ("max_concurrent", self.max_concurrent),
                             ("max_requests", self.max_requests),
                             ("quota_steps", self.quota_steps)):
            if value is not None and value < 1:
                raise ConfigError(
                    f"tenant {self.name!r}: {label} must be >= 1 "
                    f"(got {value})")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigError(
                f"tenant {self.name!r}: deadline_s must be positive")

    def to_dict(self) -> dict:
        """The JSON form of this entry (``None`` fields omitted)."""
        out: dict = {"max_steps": self.max_steps}
        for label, value in (("max_oracle_calls", self.max_oracle_calls),
                             ("deadline_s", self.deadline_s),
                             ("max_concurrent", self.max_concurrent),
                             ("max_requests", self.max_requests),
                             ("quota_steps", self.quota_steps)):
            if value is not None:
                out[label] = value
        return out


@dataclass(frozen=True)
class ServeConfig:
    """The whole service description: databases + tenants + server knobs.

    ``default_tenant`` names the tenant used by requests that carry no
    ``"tenant"`` field; it must exist in ``tenants``.
    """

    databases: tuple[DatabaseSpec, ...]
    tenants: tuple[TenantSpec, ...]
    default_tenant: str = "default"
    host: str = "127.0.0.1"
    port: int = 8199
    workers: int = 4
    trace_capacity: int = 4096
    #: Engine execution configuration for every catalog engine: the
    #: plan optimizer and the compiled backend (both on by default, as
    #: in :class:`repro.engine.Engine`; ``optimize = false`` in the
    #: ``[server]`` table is the service-wide escape hatch).
    optimize: bool = True
    compiled: bool = True
    #: Path of the durable :class:`repro.store.Store` sqlite file, or
    #: ``None`` for a memory-only cache.  When set, the server loads
    #: persisted results at startup (warm restart) and writes verdicts
    #: through as it computes them (``docs/persistence.md``).
    store: str | None = None

    def validate(self) -> None:
        """Raise :class:`ConfigError` on any inconsistency."""
        if not self.databases:
            raise ConfigError("config needs at least one database")
        names = [d.name for d in self.databases]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate database names in {names}")
        tenant_names = [t.name for t in self.tenants]
        if len(set(tenant_names)) != len(tenant_names):
            raise ConfigError(f"duplicate tenant names in {tenant_names}")
        if self.default_tenant not in tenant_names:
            raise ConfigError(
                f"default tenant {self.default_tenant!r} is not declared "
                f"in tenants {tenant_names}")
        for spec in self.databases:
            spec.validate()
        for tenant in self.tenants:
            tenant.validate()
        if self.workers < 1:
            raise ConfigError("server.workers must be >= 1")
        if self.trace_capacity < 1:
            raise ConfigError("server.trace_capacity must be >= 1")

    def database(self, name: str) -> DatabaseSpec:
        """The named database spec (:class:`KeyError` when absent)."""
        for spec in self.databases:
            if spec.name == name:
                return spec
        raise KeyError(name)

    def tenant(self, name: str) -> TenantSpec:
        """The named tenant spec (:class:`KeyError` when absent)."""
        for spec in self.tenants:
            if spec.name == name:
                return spec
        raise KeyError(name)

    def to_dict(self) -> dict:
        """The JSON form (what ``python -m repro serve --print-config``
        emits; :func:`config_from_dict` inverts it)."""
        return {
            "databases": {d.name: d.to_dict() for d in self.databases},
            "tenants": {t.name: t.to_dict() for t in self.tenants},
            "server": {
                "default_tenant": self.default_tenant,
                "host": self.host,
                "port": self.port,
                "workers": self.workers,
                "trace_capacity": self.trace_capacity,
                "optimize": self.optimize,
                "compiled": self.compiled,
                **({"store": self.store} if self.store else {}),
            },
        }


def _relations(name: str, entries) -> tuple:
    """Parse a config ``relations`` list into ``(rank, tuples, cofinite)``."""
    if not isinstance(entries, (list, tuple)):
        raise ConfigError(
            f"database {name!r}: 'relations' must be a list")
    out = []
    for entry in entries:
        if not isinstance(entry, dict) or "rank" not in entry:
            raise ConfigError(
                f"database {name!r}: each relation needs at least a "
                f"'rank' field (got {entry!r})")
        tuples = tuple(tuple(t) for t in entry.get("tuples", ()))
        out.append((int(entry["rank"]), tuples,
                    bool(entry.get("cofinite", False))))
    return tuple(out)


def _database_spec(name: str, entry: dict) -> DatabaseSpec:
    """One ``databases`` table entry → :class:`DatabaseSpec`."""
    if not isinstance(entry, dict):
        raise ConfigError(f"database {name!r}: entry must be a table/object")
    kind = entry.get("kind", "builtin")
    spec = DatabaseSpec(
        name=name, kind=kind,
        source=entry.get("source", name if kind == "builtin" else ""),
        relations=(_relations(name, entry["relations"])
                   if "relations" in entry else ()),
        domain=int(entry.get("domain", 0)))
    spec.validate()
    return spec


def _tenant_spec(name: str, entry: dict) -> TenantSpec:
    """One ``tenants`` table entry → :class:`TenantSpec`."""
    if not isinstance(entry, dict):
        raise ConfigError(f"tenant {name!r}: entry must be a table/object")
    known = {"max_steps", "max_oracle_calls", "deadline_s",
             "max_concurrent", "max_requests", "quota_steps"}
    unknown = set(entry) - known
    if unknown:
        raise ConfigError(
            f"tenant {name!r}: unknown quota fields {sorted(unknown)}; "
            f"choose from {sorted(known)}")
    spec = TenantSpec(
        name=name,
        max_steps=int(entry.get("max_steps", limits.SERVE_REQUEST)),
        max_oracle_calls=entry.get("max_oracle_calls"),
        deadline_s=entry.get("deadline_s"),
        max_concurrent=entry.get("max_concurrent"),
        max_requests=entry.get("max_requests"),
        quota_steps=entry.get("quota_steps"))
    spec.validate()
    return spec


def config_from_dict(data: dict) -> ServeConfig:
    """Build and validate a :class:`ServeConfig` from parsed JSON/TOML."""
    if not isinstance(data, dict):
        raise ConfigError("config root must be a table/object")
    databases = tuple(_database_spec(name, entry)
                      for name, entry in data.get("databases", {}).items())
    tenant_table = data.get("tenants", {})
    server = data.get("server", {})
    default_tenant = server.get("default_tenant", "default")
    if not tenant_table:
        # No tenants declared: a single permissive default tenant, so
        # a databases-only config is immediately servable.
        tenant_table = {default_tenant: {}}
    tenants = tuple(_tenant_spec(name, entry)
                    for name, entry in tenant_table.items())
    config = ServeConfig(
        databases=databases,
        tenants=tenants,
        default_tenant=default_tenant,
        host=server.get("host", "127.0.0.1"),
        port=int(server.get("port", 8199)),
        workers=int(server.get("workers", 4)),
        trace_capacity=int(server.get("trace_capacity", 4096)),
        optimize=bool(server.get("optimize", True)),
        compiled=bool(server.get("compiled", True)),
        store=server.get("store"))
    config.validate()
    return config


def load_config(path: str | Path) -> ServeConfig:
    """Load a config file; ``.toml`` parses as TOML, anything else as JSON.

    TOML needs :mod:`tomllib` (Python 3.11+); on older interpreters a
    ``.toml`` path raises :class:`ConfigError` asking for the JSON
    spelling instead of failing with an import error mid-request.
    """
    path = Path(path)
    raw = path.read_bytes()
    if path.suffix.lower() == ".toml":
        if tomllib is None:  # pragma: no cover - 3.10 only
            raise ConfigError(
                f"{path}: TOML configs need Python 3.11+ (tomllib); "
                "use the JSON spelling instead")
        try:
            data = tomllib.loads(raw.decode("utf-8"))
        except tomllib.TOMLDecodeError as exc:
            raise ConfigError(f"{path}: invalid TOML: {exc}") from exc
    else:
        try:
            data = json.loads(raw.decode("utf-8"))
        except json.JSONDecodeError as exc:
            raise ConfigError(f"{path}: invalid JSON: {exc}") from exc
    return config_from_dict(data)


def default_config() -> ServeConfig:
    """The batteries-included config (CLI ``--print-config``, tests,
    and the E19 load generator): every builtin database, one small fcf
    database, and two tenants — a permissive default and a strictly
    quota'd ``metered`` tenant whose 429s are easy to demonstrate."""
    return config_from_dict({
        "databases": {
            "clique": {"kind": "builtin"},
            "rado": {"kind": "builtin"},
            "triangles": {"kind": "builtin"},
            "k3k2": {"kind": "builtin"},
            "pair": {"kind": "fcf", "relations": [
                {"rank": 2, "tuples": [[0, 1], [1, 0]]},
                {"rank": 1, "tuples": [[0]], "cofinite": True},
            ]},
        },
        "tenants": {
            "default": {},
            "metered": {"max_steps": 200_000, "max_concurrent": 2,
                        "max_requests": 50, "quota_steps": 2_000_000},
        },
        "server": {"default_tenant": "default"},
    })
