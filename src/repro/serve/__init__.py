"""The serving tier: the unified engine behind an HTTP/JSON API.

``repro.serve`` exposes the four-frontend engine over asyncio HTTP
(stdlib only): a catalog of named databases built lazily behind one
shared engine cache, multi-tenant admission control with per-request
budget forks, streamed batch evaluation, and stats/trace
observability.  Start one with ``python -m repro serve`` or, in
process, :func:`start_in_thread`; talk to it with
:class:`~repro.serve.client.ServeClient`.  Wire formats and quota
semantics are documented in ``docs/serving.md``.
"""

from .catalog import FRONTENDS, Catalog, QueryError
from .client import ServeClient, ServeError
from .config import (
    ConfigError,
    DatabaseSpec,
    ServeConfig,
    TenantSpec,
    config_from_dict,
    default_config,
    load_config,
)
from .protocol import ProtocolError
from .server import ServeApp, ServerHandle, serve_forever, start_in_thread
from .tenants import QuotaExceeded, Tenant, TenantRegistry, UnknownTenant

__all__ = [
    "FRONTENDS",
    "Catalog",
    "ConfigError",
    "DatabaseSpec",
    "ProtocolError",
    "QueryError",
    "QuotaExceeded",
    "ServeApp",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServerHandle",
    "Tenant",
    "TenantRegistry",
    "TenantSpec",
    "UnknownTenant",
    "config_from_dict",
    "default_config",
    "load_config",
    "serve_forever",
    "start_in_thread",
]
