"""A minimal HTTP/1.1 layer over asyncio streams (stdlib only).

The serving tier speaks just enough HTTP for its JSON API: request
line + headers + ``Content-Length`` body in, status line + headers +
body out, every exchange ``Connection: close``.  Closing per request
keeps the state machine one screen long — no keep-alive, no chunked
parsing — while still letting the server *stream*: a streaming
response sends its headers without ``Content-Length`` and writes
newline-delimited JSON until it closes the connection (the NDJSON
convention ``POST /eval_batch`` uses).

Deliberate limits (HTTP 400/413 on violation, never an exception to
the event loop): request line and headers ≤ 16 KiB, bodies ≤ 8 MiB.
"""

from __future__ import annotations

import json
from asyncio import IncompleteReadError, LimitOverrunError, StreamReader
from dataclasses import dataclass, field

#: Hard caps on request size; violations are refused, not buffered.
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Reason phrases for the status codes the server emits.
REASONS = {
    200: "OK", 400: "Bad Request", 403: "Forbidden", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
}


class ProtocolError(Exception):
    """A malformed or over-limit request; carries the HTTP status."""

    def __init__(self, status: int, detail: str):
        super().__init__(detail)
        self.status = status
        self.detail = detail


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict:
        """The body parsed as a JSON object (:class:`ProtocolError`
        400 on anything else)."""
        if not self.body:
            raise ProtocolError(400, "request body must be a JSON object")
        try:
            data = json.loads(self.body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ProtocolError(400, f"invalid JSON body: {exc}") from exc
        if not isinstance(data, dict):
            raise ProtocolError(400, "request body must be a JSON object")
        return data


def _parse_query(raw: str) -> dict[str, str]:
    """``a=1&b=2`` → ``{"a": "1", "b": "2"}`` (no unquoting needed for
    this API's integer-valued parameters)."""
    out: dict[str, str] = {}
    for part in raw.split("&"):
        if not part:
            continue
        key, __, value = part.partition("=")
        out[key] = value
    return out


async def read_request(reader: StreamReader) -> Request | None:
    """Parse one request from the stream (``None`` on a clean EOF
    before any bytes — the client connected and went away)."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(400, "truncated request head") from exc
    except LimitOverrunError as exc:
        raise ProtocolError(413, "request head too large") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise ProtocolError(413, "request head too large")

    try:
        lines = head.decode("latin-1").split("\r\n")
        method, target, version = lines[0].split(" ", 2)
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(400, "malformed request line") from exc
    if not version.startswith("HTTP/1."):
        raise ProtocolError(400, f"unsupported protocol {version!r}")

    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    path, __, raw_query = target.partition("?")
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise ProtocolError(400, "malformed Content-Length") from exc
        if length < 0 or length > MAX_BODY_BYTES:
            raise ProtocolError(413, f"body of {length} bytes refused")
        try:
            body = await reader.readexactly(length)
        except IncompleteReadError as exc:
            raise ProtocolError(400, "truncated request body") from exc
    return Request(method=method.upper(), path=path,
                   query=_parse_query(raw_query), headers=headers,
                   body=body)


def response_bytes(status: int, body: bytes,
                   content_type: str = "application/json") -> bytes:
    """A complete non-streaming response (headers + body)."""
    reason = REASONS.get(status, "Unknown")
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n")
    return head.encode("latin-1") + body


def json_response(status: int, payload) -> bytes:
    """A JSON response (the API's default shape)."""
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    return response_bytes(status, body)


def error_response(status: int, code: str, detail: str,
                   extra: dict | None = None) -> bytes:
    """The uniform error shape: ``{"error": code, "detail": ...}``."""
    payload = {"error": code, "detail": detail}
    if extra:
        payload.update(extra)
    return json_response(status, payload)


def stream_head(status: int = 200,
                content_type: str = "application/x-ndjson") -> bytes:
    """Headers for a streaming response: no ``Content-Length`` — the
    body runs until the server closes the connection."""
    reason = REASONS.get(status, "Unknown")
    return (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Connection: close\r\n\r\n").encode("latin-1")


def ndjson_line(payload) -> bytes:
    """One streamed NDJSON record."""
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
