"""Canonical orderings and fair enumerations of countable sets.

Recursive databases live over countably infinite domains that are never
materialized.  Algorithms that must "walk the domain" (back-and-forth
constructions, characteristic-tree searches, extension-axiom witnesses)
instead consume a *fair enumeration*: an iterator guaranteed to reach every
element eventually.  This module provides the standard tools:

* Cantor pairing/unpairing for ℕ² and its extension to ℕ^k,
* fair (dovetailed) enumeration of k-tuples over a given enumerable set,
* fair union of countably many iterators.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from itertools import count, islice
from math import isqrt
from typing import TypeVar

T = TypeVar("T")


def cantor_pair(x: int, y: int) -> int:
    """Cantor pairing function: a bijection ℕ² → ℕ.

    >>> cantor_pair(0, 0), cantor_pair(1, 0), cantor_pair(0, 1)
    (0, 1, 2)
    """
    if x < 0 or y < 0:
        raise ValueError("cantor_pair is defined on non-negative integers")
    s = x + y
    return s * (s + 1) // 2 + y


def cantor_unpair(z: int) -> tuple[int, int]:
    """Inverse of :func:`cantor_pair`.

    >>> all(cantor_unpair(cantor_pair(x, y)) == (x, y)
    ...     for x in range(20) for y in range(20))
    True
    """
    if z < 0:
        raise ValueError("cantor_unpair is defined on non-negative integers")
    # Largest s with s(s+1)/2 <= z, via exact integer square root.
    s = (isqrt(8 * z + 1) - 1) // 2
    y = z - s * (s + 1) // 2
    return s - y, y


def encode_tuple(values: Sequence[int]) -> int:
    """Encode a non-empty tuple of naturals as a single natural.

    The encoding folds :func:`cantor_pair` left to right; tuples of
    different ranks may collide, so the rank must be known externally
    (it always is: relations have fixed arity).
    """
    if not values:
        raise ValueError("cannot encode the empty tuple; encode rank separately")
    acc = values[0]
    for v in values[1:]:
        acc = cantor_pair(acc, v)
    return acc


def decode_tuple(code: int, rank: int) -> tuple[int, ...]:
    """Inverse of :func:`encode_tuple` for a known ``rank >= 1``."""
    if rank < 1:
        raise ValueError("rank must be >= 1")
    parts = [code]
    for _ in range(rank - 1):
        head, tail = cantor_unpair(parts[0])
        parts[0] = head
        parts.insert(1, tail)
    return tuple(parts)


def naturals(start: int = 0) -> Iterator[int]:
    """The fair enumeration 0, 1, 2, … of ℕ (optionally offset)."""
    return count(start)


def fair_tuples(elements: Iterable[T], rank: int) -> Iterator[tuple[T, ...]]:
    """Fairly enumerate all ``rank``-tuples over a (possibly infinite) iterable.

    The enumeration is *fair*: every tuple whose components appear in the
    input enumeration is produced after finitely many steps, even when the
    input is infinite.  Rank 0 yields exactly the empty tuple.

    >>> list(islice(fair_tuples(naturals(), 2), 4))
    [(0, 0), (0, 1), (1, 0), (1, 1)]
    """
    if rank < 0:
        raise ValueError("rank must be >= 0")
    if rank == 0:
        yield ()
        return

    seen: list[T] = []
    source = iter(elements)
    exhausted = False
    emitted_upto = 0  # tuples over seen[:emitted_upto] have been emitted

    while True:
        if not exhausted:
            try:
                seen.append(next(source))
            except StopIteration:
                exhausted = True
        n = len(seen)
        if n == emitted_upto:
            return  # finite input fully processed
        # Emit all tuples over seen[:n] that use at least one new element
        # (i.e. tuples not already emitted over seen[:emitted_upto]).
        for tup in _tuples_with_new_element(seen, emitted_upto, rank):
            yield tup
        emitted_upto = n
        if exhausted and emitted_upto == len(seen):
            return


def _tuples_with_new_element(seen: Sequence[T], old: int,
                             rank: int) -> Iterator[tuple[T, ...]]:
    """Tuples over ``seen`` using at least one index >= ``old``."""
    n = len(seen)

    def rec(prefix: tuple[T, ...], uses_new: bool, slots: int) -> Iterator[tuple[T, ...]]:
        if slots == 0:
            if uses_new:
                yield prefix
            return
        for i in range(n):
            yield from rec(prefix + (seen[i],), uses_new or i >= old, slots - 1)

    yield from rec((), False, rank)


def fair_union(iterators: Sequence[Iterator[T]]) -> Iterator[T]:
    """Round-robin (dovetailed) union of finitely many iterators."""
    active = list(iterators)
    while active:
        still = []
        for it in active:
            try:
                yield next(it)
            except StopIteration:
                continue
            still.append(it)
        active = still


def take(iterable: Iterable[T], n: int) -> list[T]:
    """The first ``n`` items of ``iterable`` as a list."""
    return list(islice(iterable, n))
