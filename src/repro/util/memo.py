"""Bounded memoization helpers.

Characteristic trees, tuple-equivalence oracles, and local-type
computations are pure but repeatedly consulted; these helpers cache their
results without letting caches grow without bound during long benchmark
sweeps.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Hashable
from functools import wraps
from typing import TypeVar

R = TypeVar("R")


def lru_cached(maxsize: int = 65536) -> Callable[[Callable[..., R]], Callable[..., R]]:
    """An LRU cache decorator with introspection hooks.

    Unlike :func:`functools.lru_cache` the wrapper exposes the cache dict
    (``.cache``) and a ``.misses`` counter, which the benchmarks use to
    report how many distinct subproblems a construction touched.
    """

    def decorate(fn: Callable[..., R]) -> Callable[..., R]:
        cache: OrderedDict[Hashable, R] = OrderedDict()

        @wraps(fn)
        def wrapper(*args: Hashable) -> R:
            if args in cache:
                cache.move_to_end(args)
                return cache[args]
            result = fn(*args)
            cache[args] = result
            wrapper.misses += 1  # type: ignore[attr-defined]
            if len(cache) > maxsize:
                cache.popitem(last=False)
            return result

        wrapper.cache = cache  # type: ignore[attr-defined]
        wrapper.misses = 0  # type: ignore[attr-defined]
        return wrapper

    return decorate


class CallCounter:
    """Wrap a callable and count its invocations.

    Used to instrument oracles: Definition 2.4 queries a database only
    through "is u ∈ Rᵢ?" questions, and experiments report how many such
    questions each algorithm asks.
    """

    def __init__(self, fn: Callable[..., R], name: str = ""):
        self._fn = fn
        self.name = name or getattr(fn, "__name__", "callable")
        self.calls = 0

    def __call__(self, *args, **kwargs) -> R:
        self.calls += 1
        return self._fn(*args, **kwargs)

    def reset(self) -> None:
        self.calls = 0

    def __repr__(self) -> str:
        return f"CallCounter({self.name}, calls={self.calls})"
