"""Bounded memoization helpers.

Characteristic trees, tuple-equivalence oracles, and local-type
computations are pure but repeatedly consulted; these helpers cache their
results without letting caches grow without bound during long benchmark
sweeps.

Thread safety: both :func:`lru_cached` and :class:`CallCounter` are safe
to share across threads (see ``docs/concurrency.md``).  The memo wrapper
holds one re-entrant lock around lookup, computation, and insertion, so
a cold key is computed exactly once even under contention — the memoized
functions here are pure, so serializing their first computation is the
cheap correct choice, and a warm hit pays only one uncontended acquire.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable, Hashable
from functools import wraps
from typing import TypeVar

R = TypeVar("R")


# Sentinel separating positional from keyword arguments in cache keys;
# an object() cannot collide with user-supplied hashable arguments.
_KWD_MARK = object()


def _make_key(args: tuple, kwargs: dict) -> Hashable:
    """A stable, hashable key for a call signature.

    Positional-only calls key on the bare ``args`` tuple — preserving the
    historical key format so callers introspecting ``.cache`` (the
    benchmarks do) see the same keys as before.  Keyword arguments are
    appended after a sentinel, sorted by name so that ``f(a, x=1, y=2)``
    and ``f(a, y=2, x=1)`` share an entry.
    """
    if not kwargs:
        return args
    return args + (_KWD_MARK,) + tuple(sorted(kwargs.items()))


def lru_cached(maxsize: int = 65536) -> Callable[[Callable[..., R]], Callable[..., R]]:
    """An LRU cache decorator with introspection hooks.

    Unlike :func:`functools.lru_cache` the wrapper exposes the cache dict
    (``.cache``), a ``.misses`` counter (how many distinct subproblems a
    construction touched — the benchmarks report it), a ``.hits`` counter
    (how much re-asking the cache absorbed — the engine's
    :class:`~repro.engine.stats.EngineStats` reports it), an
    ``.evictions`` counter, and a ``.cache_clear()`` resetting all of
    them.  Keyword arguments are supported and keyed order-insensitively.

    The wrapper is **thread-safe**: one re-entrant lock guards the
    cache and its counters, held across the underlying call too, so a
    cold key is computed once even when several threads race for it
    (re-entrant so memoized functions may recurse through themselves).
    The lock object is exposed as ``.lock`` for introspection.

    Doctest::

        >>> @lru_cached(maxsize=2)
        ... def square(n):
        ...     return n * n
        >>> square(2), square(2), square(3)
        (4, 4, 9)
        >>> square.hits, square.misses, square.evictions
        (1, 2, 0)
        >>> square(4)          # evicts the LRU entry (2)
        16
        >>> square.evictions
        1
        >>> square.cache_clear(); square.misses
        0

    Keyword arguments key order-insensitively::

        >>> @lru_cached()
        ... def scaled(n, *, a=0, b=0):
        ...     return n + a + b
        >>> scaled(1, a=2, b=3), scaled(1, b=3, a=2)
        (6, 6)
        >>> scaled.hits, scaled.misses
        (1, 1)
    """

    def decorate(fn: Callable[..., R]) -> Callable[..., R]:
        cache: OrderedDict[Hashable, R] = OrderedDict()
        lock = threading.RLock()

        @wraps(fn)
        def wrapper(*args: Hashable, **kwargs: Hashable) -> R:
            key = _make_key(args, kwargs)
            with lock:
                if key in cache:
                    cache.move_to_end(key)
                    wrapper.hits += 1  # type: ignore[attr-defined]
                    return cache[key]
                # Compute with the lock held: fn is pure, recursion is
                # covered by re-entrancy, and racing threads wait for
                # one computation instead of duplicating it.
                result = fn(*args, **kwargs)
                cache[key] = result
                wrapper.misses += 1  # type: ignore[attr-defined]
                if len(cache) > maxsize:
                    cache.popitem(last=False)
                    wrapper.evictions += 1  # type: ignore[attr-defined]
                return result

        def cache_clear() -> None:
            with lock:
                cache.clear()
                wrapper.hits = 0  # type: ignore[attr-defined]
                wrapper.misses = 0  # type: ignore[attr-defined]
                wrapper.evictions = 0  # type: ignore[attr-defined]

        wrapper.cache = cache  # type: ignore[attr-defined]
        wrapper.lock = lock  # type: ignore[attr-defined]
        wrapper.hits = 0  # type: ignore[attr-defined]
        wrapper.misses = 0  # type: ignore[attr-defined]
        wrapper.evictions = 0  # type: ignore[attr-defined]
        wrapper.cache_clear = cache_clear  # type: ignore[attr-defined]
        return wrapper

    return decorate


class CallCounter:
    """Wrap a callable and count its invocations.

    Used to instrument oracles: Definition 2.4 queries a database only
    through "is u ∈ Rᵢ?" questions, and experiments report how many such
    questions each algorithm asks.

    The counter increment is atomic (guarded by a private lock), so a
    database shared between engine threads never loses oracle-question
    counts to an interleaved ``calls += 1``.  The wrapped callable runs
    *outside* the lock.

    Doctest::

        >>> counted = CallCounter(abs, name="abs")
        >>> counted(-3), counted(4)
        (3, 4)
        >>> counted.calls
        2
        >>> counted.reset(); counted
        CallCounter(abs, calls=0)
    """

    def __init__(self, fn: Callable[..., R], name: str = ""):
        self._fn = fn
        self.name = name or getattr(fn, "__name__", "callable")
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self, *args, **kwargs) -> R:
        with self._lock:
            self.calls += 1
        return self._fn(*args, **kwargs)

    def reset(self) -> None:
        """Zero the call counter."""
        with self._lock:
            self.calls = 0

    def __repr__(self) -> str:
        return f"CallCounter({self.name}, calls={self.calls})"
