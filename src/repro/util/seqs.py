"""Tuple (sequence) utilities shared across the library.

Tuples are the atoms of the relational model: relations are sets of
tuples, queries map databases to relations, and the paper's constructions
constantly project, extend, and permute tuples.  Terminology follows the
paper: the *rank* of a tuple is its length (denoted ``|u|``).
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from itertools import product
from typing import TypeVar

from ..errors import ArityError

T = TypeVar("T")

Tuple = tuple  # semantic alias used in signatures across the library


def rank(u: Sequence[T]) -> int:
    """The rank |u| of a tuple (its length)."""
    return len(u)


def project(u: Sequence[T], positions: Sequence[int]) -> tuple[T, ...]:
    """The projection ``u[positions]`` — components at the given 0-based
    positions, in the given order (repetitions allowed).

    This is the paper's ``d[i1,...,im]`` notation (proof of Theorem 3.1).

    >>> project(('a', 'b', 'c'), (2, 0, 0))
    ('c', 'a', 'a')
    """
    try:
        return tuple(u[i] for i in positions)
    except IndexError as exc:
        raise ArityError(
            f"projection positions {tuple(positions)!r} out of range for "
            f"rank-{len(u)} tuple") from exc


def drop_first(u: Sequence[T]) -> tuple[T, ...]:
    """``u`` without its first component (the QLhs ``↓`` projection)."""
    if not u:
        raise ArityError("cannot drop the first coordinate of a rank-0 tuple")
    return tuple(u[1:])


def drop_last(u: Sequence[T]) -> tuple[T, ...]:
    """``u`` without its last component (the ``V↓`` of Definition 3.6)."""
    if not u:
        raise ArityError("cannot drop the last coordinate of a rank-0 tuple")
    return tuple(u[:-1])


def extend(u: Sequence[T], *items: T) -> tuple[T, ...]:
    """``u`` extended on the right (the paper's ``ua₁a₂…`` shorthand)."""
    return tuple(u) + items


def swap_last_two(u: Sequence[T]) -> tuple[T, ...]:
    """``u`` with its two rightmost coordinates exchanged (QLhs ``~``)."""
    if len(u) < 2:
        raise ArityError("swap_last_two requires rank >= 2")
    return tuple(u[:-2]) + (u[-1], u[-2])


def all_position_tuples(n: int, arity: int) -> Iterator[tuple[int, ...]]:
    """All ``arity``-tuples of positions in ``range(n)``.

    These index the atomic facts a rank-``n`` tuple can project into a
    relation of the given arity — the atoms of local isomorphism
    (Proposition 2.2 (iii)).
    """
    if n < 0 or arity < 0:
        raise ValueError("n and arity must be >= 0")
    yield from product(range(n), repeat=arity)


def distinct(u: Sequence[T]) -> bool:
    """Whether all components of ``u`` are pairwise distinct."""
    return len(set(u)) == len(u)


def support(u: Sequence[T]) -> tuple[T, ...]:
    """The distinct components of ``u`` in order of first appearance."""
    seen: dict[T, None] = {}
    for x in u:
        if x not in seen:
            seen[x] = None
    return tuple(seen)


def substitute(u: Sequence[T], mapping: dict[T, T]) -> tuple[T, ...]:
    """Apply a component-wise substitution; unmapped components unchanged."""
    return tuple(mapping.get(x, x) for x in u)


def is_over(u: Sequence[T], elements: Sequence[T] | frozenset[T] | set[T]) -> bool:
    """Whether every component of ``u`` belongs to ``elements``
    (the paper's "z is a tuple over {u₁,…,uₙ}")."""
    pool = elements if isinstance(elements, (set, frozenset)) else set(elements)
    return all(x in pool for x in u)
