"""Set partitions and partition refinement.

Two uses in the library:

* enumerating the *equality patterns* of a tuple — i.e. all set partitions
  of its positions — when enumerating the equivalence classes ``Cⁿ`` of
  local isomorphism (Section 2 of the paper); and
* refining partitions of characteristic-tree levels into the stratified
  equivalences ``Vⁿᵣ`` of Section 3 (Definition 3.5, Proposition 3.7).

Partitions of ``range(n)`` are represented canonically as *restricted
growth strings* (RGS): a tuple ``p`` of length ``n`` where ``p[i]`` is the
block index of position ``i``, blocks are numbered in order of first
appearance, so ``p[0] == 0`` and ``p[i] <= max(p[:i]) + 1``.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable, Iterator, Sequence
from typing import TypeVar

T = TypeVar("T")


def equality_pattern(values: Sequence[Hashable]) -> tuple[int, ...]:
    """The restricted growth string describing which positions are equal.

    >>> equality_pattern(('a', 'b', 'a'))
    (0, 1, 0)
    >>> equality_pattern(())
    ()
    """
    blocks: dict[Hashable, int] = {}
    out = []
    for v in values:
        if v not in blocks:
            blocks[v] = len(blocks)
        out.append(blocks[v])
    return tuple(out)


def is_restricted_growth(pattern: Sequence[int]) -> bool:
    """Whether ``pattern`` is a valid restricted growth string."""
    top = -1
    for value in pattern:
        if value < 0 or value > top + 1:
            return False
        top = max(top, value)
    return True


def set_partitions(n: int) -> Iterator[tuple[int, ...]]:
    """All set partitions of ``range(n)`` as restricted growth strings.

    The count is the Bell number B(n):

    >>> [sum(1 for _ in set_partitions(k)) for k in range(6)]
    [1, 1, 2, 5, 15, 52]
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    if n == 0:
        yield ()
        return

    def rec(prefix: tuple[int, ...], top: int) -> Iterator[tuple[int, ...]]:
        if len(prefix) == n:
            yield prefix
            return
        for b in range(top + 2):
            yield from rec(prefix + (b,), max(top, b))

    yield from rec((0,), 0)


def block_count(pattern: Sequence[int]) -> int:
    """Number of blocks of a restricted growth string."""
    return (max(pattern) + 1) if pattern else 0


def blocks_of(pattern: Sequence[int]) -> list[list[int]]:
    """The blocks (as position lists) of a restricted growth string.

    >>> blocks_of((0, 1, 0))
    [[0, 2], [1]]
    """
    out: list[list[int]] = [[] for _ in range(block_count(pattern))]
    for pos, b in enumerate(pattern):
        out[b].append(pos)
    return out


def canonical_tuple(pattern: Sequence[int]) -> tuple[int, ...]:
    """The canonical tuple over ℕ realizing an equality pattern.

    The tuple uses block indices as elements, so positions are equal
    exactly when the pattern says so.

    >>> canonical_tuple((0, 1, 0))
    (0, 1, 0)
    """
    if not is_restricted_growth(pattern):
        raise ValueError(f"not a restricted growth string: {pattern!r}")
    return tuple(pattern)


def refines(finer: Sequence[int], coarser: Sequence[int]) -> bool:
    """Whether equality pattern ``finer`` refines ``coarser``.

    ``finer`` refines ``coarser`` when every block of ``finer`` is contained
    in a block of ``coarser`` — i.e. positions equal under ``finer`` are
    equal under ``coarser``.
    """
    if len(finer) != len(coarser):
        raise ValueError("patterns must describe tuples of the same rank")
    mapping: dict[int, int] = {}
    for f, c in zip(finer, coarser):
        if f in mapping:
            if mapping[f] != c:
                return False
        else:
            mapping[f] = c
    return True


class Partition:
    """A partition of a finite set of hashable items, with refinement.

    This is the workhorse behind the ``Vⁿᵣ`` computations of Section 3:
    start from the partition of a tree level by local type (``Vⁿ₀``) and
    repeatedly refine by signatures derived from the next level
    (Proposition 3.7) until the partition stabilizes.
    """

    def __init__(self, items: Iterable[T],
                 key: Callable[[T], Hashable] | None = None):
        items = list(items)
        if len(set(items)) != len(items):
            raise ValueError("partition items must be distinct")
        self._items: list[T] = items
        if key is None:
            self._block_of: dict[T, int] = {x: 0 for x in items}
        else:
            self._block_of = {}
            index: dict[Hashable, int] = {}
            for x in items:
                k = key(x)
                if k not in index:
                    index[k] = len(index)
                self._block_of[x] = index[k]
        self._renumber()

    def _renumber(self) -> None:
        """Renumber blocks canonically by first appearance."""
        remap: dict[int, int] = {}
        for x in self._items:
            b = self._block_of[x]
            if b not in remap:
                remap[b] = len(remap)
        self._block_of = {x: remap[self._block_of[x]] for x in self._items}

    @property
    def items(self) -> list[T]:
        return list(self._items)

    def block_index(self, item: T) -> int:
        """The index of the block containing ``item``."""
        return self._block_of[item]

    def blocks(self) -> list[list[T]]:
        """The blocks, each as a list in item order."""
        n = self.block_count()
        out: list[list[T]] = [[] for _ in range(n)]
        for x in self._items:
            out[self._block_of[x]].append(x)
        return out

    def block_count(self) -> int:
        return max(self._block_of.values(), default=-1) + 1

    def same_block(self, a: T, b: T) -> bool:
        return self._block_of[a] == self._block_of[b]

    def all_singletons(self) -> bool:
        """Whether every block has exactly one item."""
        return self.block_count() == len(self._items)

    def refine(self, signature: Callable[[T], Hashable]) -> bool:
        """Split blocks by ``signature``; return True if anything changed.

        Two items stay together only if they were together *and* have equal
        signatures.
        """
        before = self.block_count()
        index: dict[tuple[int, Hashable], int] = {}
        new_block: dict[T, int] = {}
        for x in self._items:
            k = (self._block_of[x], signature(x))
            if k not in index:
                index[k] = len(index)
            new_block[x] = index[k]
        self._block_of = new_block
        self._renumber()
        return self.block_count() != before

    def refine_to_fixpoint(self, signature: Callable[["Partition", T], Hashable],
                           max_rounds: int | None = None) -> int:
        """Refine with a self-referential signature until stable.

        ``signature(partition, item)`` may consult the current partition
        (e.g. block indices of related items).  Returns the number of
        refinement rounds performed.
        """
        rounds = 0
        while True:
            if max_rounds is not None and rounds >= max_rounds:
                return rounds
            changed = self.refine(lambda x: signature(self, x))
            rounds += 1
            if not changed:
                return rounds

    def as_frozen(self) -> frozenset[frozenset[T]]:
        """The partition as a hashable set of sets (order-independent)."""
        return frozenset(frozenset(b) for b in self.blocks())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Partition):
            return NotImplemented
        return (set(self._items) == set(other._items)
                and self.as_frozen() == other.as_frozen())

    def __hash__(self) -> int:
        return hash(self.as_frozen())

    def __repr__(self) -> str:
        return f"Partition({self.blocks()!r})"
