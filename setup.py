"""Legacy setuptools shim.

Offline environments without the ``wheel`` package cannot complete
PEP-517 editable installs (``pip install -e .`` needs ``bdist_wheel``);
this shim keeps ``pip install -e . --no-build-isolation`` and
``python setup.py develop`` working there.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
